"""The Cross match service: one link of the daisy chain.

Paper Section 5.3: the Portal sends the execution plan to the first
SkyNode on the list; each Cross match service calls the next one, the last
node executes its query and seeds 1-tuples, and on the way back each node
extends/filters the partial tuples via the ``sp_xmatch`` stored procedure
(temp table, spatial join, chi-squared test), then ships the surviving
tuples to its caller as a serialized rowset — chunked when a monolithic
envelope would blow the caller's XML parser memory budget.

That classic ``PerformXMatch`` path is store-and-forward: every node sits
idle until its downstream neighbour has computed and shipped its *entire*
tuple set. The streaming operation set (``OpenStream`` / ``PullBatch`` /
``AbortStream``) pipelines the same computation instead: the open cascades
down the chain once (the last node seeds and partitions its tuples into
batches), then each batch flows up hop by hop on demand, so one batch's
transfer overlaps another's compute under the network's makespan
semantics. Batches are pulled strictly in order; a *retry* of the batch
just served is answered from a cached response (a lost response must not
re-run the step or duplicate rows), anything else out of order faults
deterministically. Stream state expires against the simulated clock so an
abandoned stream cannot pin tuples forever.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import (
    ExecutionError,
    GeometryError,
    ShardUnavailableError,
    TransportError,
)
from repro.htm.cover import cover
from repro.portal.plan import ExecutionPlan, PlanStep
from repro.services.chunked import ChunkedSender, receive_rowset
from repro.services.framework import WebService
from repro.shard import (
    members_for_tuple,
    merge_match_lists,
    merge_seed_rows,
    prune_members,
)
from repro.shard.topology import ShardMember
from repro.tracing.tracer import active_tracer
from repro.soap.encoding import WireRowSet
from repro.sphere.coords import radec_to_vector
from repro.sql.area import region_for
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    Query,
    SelectItem,
    TableRef,
)
from repro.sql.parser import parse_expression
from repro.transport.chunking import batch_slices
from repro.units import arcsec_to_rad
from repro.xmatch.stream import seed_tuples
from repro.xmatch.tuples import LocalObject, PartialTuple
from repro.xmatch.wire import (
    WIRE_FORMATS,
    rowset_to_tuples,
    tuples_to_payload,
    tuples_to_rowset,
)

if TYPE_CHECKING:
    from repro.skynode.node import SkyNode

#: How long (simulated seconds) an open stream survives between touches.
STREAM_TTL_S = 600.0

#: How long (simulated seconds) a store-and-forward checkpoint — one hop's
#: completed partial-tuple payload — stays servable for a chain retry.
CHECKPOINT_TTL_S = 600.0

#: How long (simulated seconds) staged shard-fan-out tuple rows survive
#: between touches. Staging persists past the ``ShardXMatch`` that consumes
#: it so a retry after a lost response can deterministically re-run.
STAGING_TTL_S = 600.0

#: Rows per ``ShardStage`` call: keeps every staged request far below the
#: receiving shard's XML-parser memory budget (5 numeric columns per row).
SHARD_STAGE_ROWS = 2048

#: The hidden per-row column carrying a row's position in the monolithic
#: insert order; shard tables gain it at provisioning time so gathered
#: rows can be merged back into exactly the monolithic emission order.
SHARD_POS_COLUMN = "_skyq_pos"


@dataclass
class _Checkpoint:
    """One hop's completed store-and-forward result, kept for resume.

    Keyed by (execution id, chain-suffix fingerprint): when an upstream
    hop dies after this node already finished its step, the retried chain
    — possibly re-routed through a replica — is answered from here, so
    only the failed hop's bytes travel again.
    """

    rowset: WireRowSet
    stats: List[Dict[str, Any]]
    deadline: Optional[float] = None
    #: The snapshot epoch the step ran at; a checkpoint whose epoch has
    #: been garbage-collected is reaped rather than served to a resume.
    epoch: Optional[int] = None


@dataclass
class _ShardStaging:
    """Tuple rows staged on a shard ahead of one ``ShardXMatch`` call.

    Keyed by the coordinator's ``xmid``; rows are deduplicated by ``seq``
    so a retried ``ShardStage`` (lost response) cannot double-insert.
    Deliberately *not* freed when ``ShardXMatch`` consumes it: the match
    is deterministic, so a retry after a lost response simply re-runs
    against the same staged rows. The TTL reaper, ``CancelQuery``, and
    ``crash()`` are what free it.
    """

    qid: str = ""
    deadline: Optional[float] = None
    rows: Dict[int, Tuple[Any, ...]] = field(default_factory=dict)


@dataclass
class _Stream:
    """Server-side state of one open tuple stream."""

    plan_wire: Dict[str, Any]
    plan: ExecutionPlan
    me: PlanStep
    position: int
    wire_format: str
    batch_count: int
    #: The owning query's id (empty for unbudgeted streams); what
    #: ``CancelQuery`` matches on when freeing a query's streams.
    qid: str = ""
    deadline: Optional[float] = None
    #: The snapshot epoch this stream's step is pinned at (see _Checkpoint).
    epoch: Optional[int] = None
    next_seq: int = 0
    done: bool = False
    #: Cached response of the batch most recently served, so a caller's
    #: retry after a lost response is answered without re-running the step.
    last_response: Optional[Dict[str, Any]] = None
    #: This node's stats, accumulated across batches.
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Per-batch tuples shipped upstream (batch-granular accounting).
    batch_rows: List[int] = field(default_factory=list)
    # Last node on the list: the seeded tuples and their batch partition.
    tuples: Optional[List[PartialTuple]] = None
    slices: Optional[List[Tuple[int, int]]] = None
    # Middle/first nodes: where the incoming batches come from.
    downstream_url: Optional[str] = None
    downstream_id: Optional[str] = None
    downstream_stats: Optional[List[Dict[str, Any]]] = None


class CrossMatchService(WebService):
    """``PerformXMatch`` + the chunked-transfer companion ``FetchChunk``."""

    def __init__(
        self,
        node: "SkyNode",
        *,
        parser_memory_limit: Optional[int] = None,
        chunk_budget_bytes: Optional[int] = None,
    ) -> None:
        super().__init__(
            f"{node.info.archive}CrossMatch",
            parser_memory_limit=parser_memory_limit,
        )
        self._node = node
        self.sender = ChunkedSender(
            f"{node.info.archive}-xm", chunk_budget_bytes
        )
        self.register(
            "PerformXMatch",
            self._perform,
            params=(
                ("plan", "struct"),
                ("position", "int"),
                ("xid", "string"),
            ),
            returns="struct",
            doc="Run this node's step of the federated cross match. "
                "``xid`` identifies one chain execution so a retried chain "
                "is served from this node's checkpoint instead of "
                "recomputed.",
        )
        self.register(
            "FetchChunk",
            self._fetch_chunk,
            params=(("transfer_id", "string"), ("seq", "int")),
            returns="rowset",
            doc="Fetch one chunk of a chunked partial-result transfer.",
        )
        self.register(
            "AbortTransfer",
            self._abort_transfer,
            params=(("transfer_id", "string"),),
            returns="struct",
            doc="Free an abandoned chunked transfer before its TTL.",
        )
        self.register(
            "OpenStream",
            self._open_stream,
            params=(
                ("plan", "struct"),
                ("position", "int"),
                ("batch_size", "int"),
                ("wire_format", "string"),
                ("start_seq", "int"),
                ("qid", "string"),
            ),
            returns="struct",
            doc="Open a pipelined tuple stream for this node's chain step. "
                "``start_seq`` resumes at the first unacknowledged batch "
                "(a failed-over chain re-transfers nothing it already has).",
        )
        self.register(
            "PullBatch",
            self._pull_batch,
            params=(("stream_id", "string"), ("seq", "int")),
            returns="struct",
            doc="Pull one batch of an open stream (strictly in order).",
        )
        self.register(
            "AbortStream",
            self._abort_stream,
            params=(("stream_id", "string"),),
            returns="struct",
            doc="Tear down an open stream (cascades downstream).",
        )
        self.register(
            "CancelQuery",
            self._cancel_query,
            params=(
                ("query_id", "string"),
                ("plan", "struct"),
                ("position", "int"),
            ),
            returns="struct",
            doc="Eagerly free every stream, checkpoint, and chunked "
                "transfer this node holds for a query, then fan the "
                "cancel down the chain (best effort — TTL reaping "
                "remains the backstop for a lost cancel). Idempotent.",
        )
        self.register(
            "ShardSeed",
            self._shard_seed,
            params=(
                ("plan", "struct"),
                ("position", "int"),
                ("qid", "string"),
            ),
            returns="struct",
            doc="Scatter-gather seed: run this shard's slice of the seed "
                "query and ship its rows (with their monolithic row "
                "positions) back to the coordinating node.",
        )
        self.register(
            "ShardStage",
            self._shard_stage,
            params=(
                ("xmid", "string"),
                ("rows", "rowset"),
                ("qid", "string"),
            ),
            returns="struct",
            doc="Stage a slice of partial-tuple accumulators ahead of a "
                "ShardXMatch call (idempotent per seq; chunked client-side "
                "so no single request blows the parser memory budget).",
        )
        self.register(
            "ShardXMatch",
            self._shard_xmatch,
            params=(
                ("xmid", "string"),
                ("plan", "struct"),
                ("position", "int"),
                ("qid", "string"),
            ),
            returns="struct",
            doc="Scatter-gather match: run the cross-match stored "
                "procedure over this shard's rows against the staged "
                "tuples, shipping matches tagged with seq and monolithic "
                "row position for the coordinator's canonical merge.",
        )
        self._streams: Dict[str, _Stream] = {}
        self._stream_ids = itertools.count(1)
        self._stagings: Dict[str, _ShardStaging] = {}
        self._xmid_counter = itertools.count(1)
        self._checkpoints: Dict[str, _Checkpoint] = {}
        self._clock_fn: Optional[Callable[[], float]] = None
        self._on_reclaim: Optional[Callable[[int], None]] = None
        self._on_stale_reap: Optional[Callable[[int], None]] = None
        self._on_cancel: Optional[Callable[[], None]] = None
        self._on_eager: Optional[Callable[[int], None]] = None

    def bind_clock(
        self,
        clock_fn: Callable[[], float],
        on_reclaim: Optional[Callable[[int], None]] = None,
        on_stale_reap: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Expire abandoned streams against a clock, reporting reclaims.

        ``on_stale_reap`` is called with a count whenever checkpoints or
        streams are dropped because their pinned epoch was
        garbage-collected (see :meth:`reap_stale_epochs`).
        """
        self._clock_fn = clock_fn
        self._on_reclaim = on_reclaim
        self._on_stale_reap = on_stale_reap

    def bind_cancel(
        self,
        on_cancel: Optional[Callable[[], None]] = None,
        on_eager: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Report cancellation activity to the node's metrics.

        ``on_cancel`` fires once per ``CancelQuery`` handled (idempotent
        repeats included); ``on_eager`` receives the count of streams,
        checkpoints, and transfers a cancel freed ahead of their TTLs.
        """
        self._on_cancel = on_cancel
        self._on_eager = on_eager

    # -- operations ------------------------------------------------------------

    def _perform(
        self, plan: Dict[str, Any], position: int, xid: str = ""
    ) -> Dict[str, Any]:
        plan_obj = ExecutionPlan.from_wire(plan)
        position = int(position)
        me = self._validate_step(plan_obj, position)
        self._reap_checkpoints()
        self.reap_stale_epochs()
        checkpoint_key = (
            f"{xid}:{plan_obj.fingerprint(position)}" if xid else None
        )
        if checkpoint_key is not None:
            checkpoint = self._checkpoints.get(checkpoint_key)
            if checkpoint is not None:
                # A retried chain (upstream hop died after this node already
                # finished): serve the completed payload as-is. No downstream
                # call, no recompute — only the failed hop's bytes travel
                # again. The fingerprint is URL-independent, so the hit
                # survives replica substitution anywhere in the suffix.
                self._touch_checkpoint(checkpoint)
                return self._respond(
                    checkpoint.rowset,
                    [dict(s) for s in checkpoint.stats],
                    qid=xid,
                )
        stats_chain: List[Dict[str, Any]] = []
        if position == len(plan_obj.steps) - 1:
            tuples, my_stats = self._seed_step(plan_obj, me, qid=xid)
        else:
            incoming, stats_chain = self._call_next(
                plan, plan_obj, position, xid
            )
            tuples, my_stats = self._local_step(
                plan_obj, me, incoming, position=position, qid=xid
            )
        out_rowset = tuples_to_rowset(
            tuples,
            plan_obj.member_aliases_after(position),
            plan_obj.attr_columns_after(position),
        )
        my_stats["tuples_out"] = len(tuples)
        stats_chain.append(my_stats)
        if checkpoint_key is not None:
            checkpoint = _Checkpoint(
                rowset=out_rowset,
                stats=[dict(s) for s in stats_chain],
                epoch=me.epoch,
            )
            self._touch_checkpoint(checkpoint)
            self._checkpoints[checkpoint_key] = checkpoint
        return self._respond(out_rowset, stats_chain, qid=xid)

    def _fetch_chunk(self, transfer_id: str, seq: int) -> WireRowSet:
        return self.sender.fetch_chunk(transfer_id, seq)

    def _abort_transfer(self, transfer_id: str) -> Dict[str, Any]:
        return {"aborted": self.sender.abort(str(transfer_id))}

    # -- the streaming operation set ----------------------------------------------

    def _validate_step(self, plan: ExecutionPlan, position: int) -> PlanStep:
        me = plan.step(position)
        if me.archive != self._node.info.archive:
            raise ExecutionError(
                f"plan step {position} targets {me.archive!r} but reached "
                f"{self._node.info.archive!r}"
            )
        return me

    def _stream_now(self) -> Optional[float]:
        return self._clock_fn() if self._clock_fn is not None else None

    def _reap_streams(self) -> None:
        now = self._stream_now()
        if now is None:
            return
        expired = [
            sid
            for sid, stream in self._streams.items()
            if stream.deadline is not None and stream.deadline <= now
        ]
        abandoned = 0
        for sid in expired:
            if not self._streams.pop(sid).done:
                abandoned += 1
        if abandoned and self._on_reclaim is not None:
            self._on_reclaim(abandoned)

    def _touch(self, stream: _Stream) -> None:
        now = self._stream_now()
        if now is not None:
            stream.deadline = now + STREAM_TTL_S

    def _reap_stagings(self) -> None:
        now = self._stream_now()
        if now is None:
            return
        for xmid in [
            xmid
            for xmid, staging in self._stagings.items()
            if staging.deadline is not None and staging.deadline <= now
        ]:
            del self._stagings[xmid]

    def _touch_staging(self, staging: _ShardStaging) -> None:
        now = self._stream_now()
        if now is not None:
            staging.deadline = now + STAGING_TTL_S

    def _reap_checkpoints(self) -> None:
        now = self._stream_now()
        if now is None:
            return
        for key in [
            key
            for key, checkpoint in self._checkpoints.items()
            if checkpoint.deadline is not None and checkpoint.deadline <= now
        ]:
            del self._checkpoints[key]

    def _touch_checkpoint(self, checkpoint: _Checkpoint) -> None:
        now = self._stream_now()
        if now is not None:
            checkpoint.deadline = now + CHECKPOINT_TTL_S

    def reap_stale_epochs(self) -> int:
        """Drop checkpoints and streams whose pinned epoch has been GC'd.

        Once a snapshot falls off the engine's pinnable window, a resume
        against a checkpoint or stream pinned there could no longer be
        recomputed consistently by any other hop — so rather than serve a
        stale-epoch resume, the state is reaped and the caller gets
        "unknown stream"/recompute semantics. Runs on every operation
        entry and after each ingest commit's epoch GC. Returns the number
        of entries reaped (also reported via ``on_stale_reap``).
        """
        oldest = self._node.wrapper.db.oldest_epoch
        stale_keys = [
            key
            for key, checkpoint in self._checkpoints.items()
            if checkpoint.epoch is not None and checkpoint.epoch < oldest
        ]
        for key in stale_keys:
            del self._checkpoints[key]
        stale_streams = [
            sid
            for sid, stream in self._streams.items()
            if stream.epoch is not None and stream.epoch < oldest
        ]
        reaped = len(stale_keys)
        for sid in stale_streams:
            if not self._streams.pop(sid).done:
                reaped += 1
        if reaped and self._on_stale_reap is not None:
            self._on_stale_reap(reaped)
        return reaped

    @property
    def open_checkpoints(self) -> int:
        """Checkpoints currently held (bounded by the TTL reaper)."""
        return len(self._checkpoints)

    def crash(self) -> None:
        """Drop all volatile stream/checkpoint state, as a crash would.

        Nothing is counted as reclaimed — the process died, it did not
        tidy up. Callers mid-stream get "unknown stream" after recovery.
        """
        self._streams.clear()
        self._checkpoints.clear()
        self._stagings.clear()

    def _open_stream(
        self,
        plan: Dict[str, Any],
        position: int,
        batch_size: int,
        wire_format: str,
        start_seq: int = 0,
        qid: str = "",
    ) -> Dict[str, Any]:
        self._reap_streams()
        self.reap_stale_epochs()
        plan_obj = ExecutionPlan.from_wire(plan)
        position = int(position)
        me = self._validate_step(plan_obj, position)
        batch_size = int(batch_size)
        if batch_size < 1:
            raise ExecutionError(f"batch_size must be >= 1, got {batch_size}")
        if wire_format not in WIRE_FORMATS:
            raise ExecutionError(
                f"unknown wire format {wire_format!r}; expected one of "
                f"{WIRE_FORMATS}"
            )
        start_seq = int(start_seq)
        if start_seq < 0:
            raise ExecutionError(f"start_seq must be >= 0, got {start_seq}")
        stream = _Stream(
            plan_wire=plan,
            plan=plan_obj,
            me=me,
            position=position,
            wire_format=wire_format,
            batch_count=0,
            qid=str(qid),
            epoch=me.epoch,
        )
        if position == len(plan_obj.steps) - 1:
            # Last node on the list: seed once, partition into batches. The
            # per-batch payloads then stream out on demand while upstream
            # nodes are still chewing on earlier batches. The partition is
            # deterministic, so a resumed stream (start_seq > 0) slices the
            # batches identically and serves exactly the missing suffix.
            tuples, stats = self._seed_step(plan_obj, me, qid=str(qid))
            stats["tuples_out"] = len(tuples)
            stream.tuples = tuples
            stream.slices = batch_slices(len(tuples), batch_size)
            stream.batch_count = len(stream.slices)
            stream.stats = stats
        else:
            next_step = plan_obj.step(position + 1)
            proxy = self._node.proxy(next_step.url)
            opened = proxy.call(
                "OpenStream",
                plan=plan,
                position=position + 1,
                batch_size=batch_size,
                wire_format=wire_format,
                start_seq=start_seq,
                qid=qid,
            )
            if not isinstance(opened, dict):
                raise ExecutionError(
                    f"malformed OpenStream response: {opened!r}"
                )
            stream.downstream_url = next_step.url
            stream.downstream_id = str(opened["stream_id"])
            stream.batch_count = int(opened["batch_count"])
            stream.stats = self._stats_dict(
                me,
                role="dropout" if me.dropout else "match",
                tuples_in=0,
            )
        if start_seq > stream.batch_count:
            raise ExecutionError(
                f"start_seq {start_seq} beyond the stream's "
                f"{stream.batch_count} batches"
            )
        stream.next_seq = start_seq
        stream.done = start_seq >= stream.batch_count
        stream.stats["batches"] = stream.batch_count
        stream_id = f"{self._node.info.archive}-s{next(self._stream_ids)}"
        self._streams[stream_id] = stream
        self._touch(stream)
        return {"stream_id": stream_id, "batch_count": stream.batch_count}

    def _pull_batch(self, stream_id: str, seq: int) -> Dict[str, Any]:
        self._reap_streams()
        self.reap_stale_epochs()
        stream = self._streams.get(str(stream_id))
        if stream is None:
            raise ExecutionError(f"unknown stream {stream_id!r}")
        seq = int(seq)
        if seq == stream.next_seq - 1 and stream.last_response is not None:
            # The caller is retrying the batch we just served (its response
            # was lost in flight): re-serve the cached answer verbatim —
            # no reprocessing, no duplicated rows, no stats double-count.
            self._touch(stream)
            return stream.last_response
        if seq != stream.next_seq:
            raise ExecutionError(
                f"batch {seq} out of order for stream {stream_id!r} "
                f"(expected {stream.next_seq})"
            )
        if stream.done or seq >= stream.batch_count:
            raise ExecutionError(
                f"batch {seq} out of order for stream {stream_id!r} "
                f"(the stream has only {stream.batch_count} batches)"
            )
        plan, me, position = stream.plan, stream.me, stream.position
        if stream.tuples is not None and stream.slices is not None:
            start, stop = stream.slices[seq]
            out_tuples = stream.tuples[start:stop]
        else:
            incoming, downstream_stats = self._pull_downstream(stream, seq)
            if downstream_stats is not None:
                stream.downstream_stats = downstream_stats
            out_tuples, step_stats = self._local_step(
                plan, me, incoming, position=position, qid=stream.qid
            )
            self._accumulate(stream.stats, step_stats, len(out_tuples))
        stream.batch_rows.append(len(out_tuples))
        payload = tuples_to_payload(
            out_tuples,
            plan.member_aliases_after(position),
            plan.attr_columns_after(position),
            stream.wire_format,
        )
        response: Dict[str, Any] = {"rows": payload, "batch": seq}
        stream.next_seq = seq + 1
        if seq == stream.batch_count - 1:
            stream.done = True
            stream.tuples = None  # the batches are out; free the seed set
            stream.stats["batch_rows"] = list(stream.batch_rows)
            chain = list(stream.downstream_stats or [])
            chain.append(stream.stats)
            response["stats"] = chain
        stream.last_response = response
        self._touch(stream)
        return response

    def _pull_downstream(
        self, stream: _Stream, seq: int
    ) -> Tuple[List[PartialTuple], Optional[List[Dict[str, Any]]]]:
        """Fetch batch ``seq`` from the downstream neighbour and decode it."""
        assert stream.downstream_url is not None
        proxy = self._node.proxy(stream.downstream_url)
        response = proxy.call(
            "PullBatch", stream_id=stream.downstream_id, seq=seq
        )
        if not isinstance(response, dict) or not isinstance(
            response.get("rows"), WireRowSet
        ):
            raise ExecutionError(f"malformed PullBatch response: {response!r}")
        incoming = rowset_to_tuples(
            response["rows"],
            stream.plan.member_aliases_after(stream.position + 1),
            stream.plan.attr_columns_after(stream.position + 1),
        )
        stats = response.get("stats")
        return incoming, list(stats) if stats else None

    @staticmethod
    def _accumulate(
        total: Dict[str, Any], step: Dict[str, Any], tuples_out: int
    ) -> None:
        """Fold one batch's step stats into the stream's running totals."""
        for key in (
            "tuples_in",
            "rows_examined",
            "candidates_tested",
            "logical_reads",
            "physical_reads",
        ):
            total[key] += step[key]
        total["tuples_out"] += tuples_out

    def _abort_stream(self, stream_id: str) -> Dict[str, Any]:
        self._reap_streams()
        stream = self._streams.pop(str(stream_id), None)
        if stream is None:
            return {"aborted": False}
        if not stream.done and self._on_reclaim is not None:
            self._on_reclaim(1)
        if stream.downstream_id is not None and stream.downstream_url:
            try:
                self._node.proxy(stream.downstream_url).call(
                    "AbortStream", stream_id=stream.downstream_id
                )
            except Exception:
                pass  # best effort; the downstream TTL is the backstop
        return {"aborted": True}

    def _cancel_query(
        self,
        query_id: str,
        plan: Optional[Dict[str, Any]] = None,
        position: int = -1,
    ) -> Dict[str, Any]:
        """The ``CancelQuery`` operation body.

        Frees this node's state for the query *first* (the local reclaim
        must not depend on downstream reachability), then forwards the
        cancel to the next chain hop when a plan is supplied. The
        forward is best effort: a lost or delayed cancel leaves the TTL
        reaper as the backstop, exactly as an abandoned drain does.
        """
        query_id = str(query_id)
        freed = self.release_query(query_id)
        if self._on_cancel is not None:
            self._on_cancel()
        tracer = active_tracer()
        if tracer is not None:
            tracer.annotate("cancel", query_id=query_id, freed=freed)
        self._cancel_shards(query_id)
        forwarded = False
        if plan:
            plan_obj = ExecutionPlan.from_wire(plan)
            position = int(position)
            if 0 <= position < len(plan_obj.steps) - 1:
                next_step = plan_obj.step(position + 1)
                try:
                    self._node.proxy(next_step.url).call(
                        "CancelQuery",
                        query_id=query_id,
                        plan=plan,
                        position=position + 1,
                    )
                    forwarded = True
                except Exception:
                    pass  # best effort; the downstream TTL is the backstop
        return {"cancelled": True, "freed": freed, "forwarded": forwarded}

    def _cancel_shards(self, query_id: str) -> None:
        """Fan a cancel to every shard endpoint candidate, best effort.

        A coordinating node's streams, checkpoints, and stagings live on
        its shards too; eager reclaim there is worth one parallel round
        of (cheap, idempotent) cancels. Every failure is swallowed — the
        shards' TTL reapers remain the backstop.
        """
        shard_set = self._node.shard_set
        network = self._node.network
        if shard_set is None or network is None or not query_id:
            return
        with network.parallel():
            for member in shard_set.members:
                with network.branch():
                    for url in member.candidate_urls("crossmatch"):
                        try:
                            self._node.proxy(url).call(
                                "CancelQuery",
                                query_id=query_id,
                                plan=None,
                                position=-1,
                            )
                            break
                        except Exception:
                            continue

    def release_query(self, query_id: str) -> int:
        """Free every stream, checkpoint, and transfer owned by a query.

        Returns how many pieces of state were freed eagerly (reported
        through ``on_eager`` — kept disjoint from the TTL reaper's
        ``reclaimed_transfers`` so the metrics can prove what eager
        cancellation actually saved). Idempotent: a repeat frees 0.
        """
        self._reap_streams()
        self._reap_checkpoints()
        self._reap_stagings()
        if not query_id:
            return 0
        freed = 0
        for sid in [
            sid
            for sid, stream in self._streams.items()
            if stream.qid == query_id
        ]:
            if not self._streams.pop(sid).done:
                freed += 1
        prefix = f"{query_id}:"
        for key in [k for k in self._checkpoints if k.startswith(prefix)]:
            del self._checkpoints[key]
            freed += 1
        for xmid in [
            xmid
            for xmid, staging in self._stagings.items()
            if staging.qid == query_id
        ]:
            del self._stagings[xmid]
            freed += 1
        freed += self.sender.cancel_query(query_id)
        if freed and self._on_eager is not None:
            self._on_eager(freed)
        return freed

    @property
    def open_streams(self) -> int:
        """Streams still holding server-side state (0 after clean runs)."""
        return sum(1 for stream in self._streams.values() if not stream.done)

    # -- chain plumbing -----------------------------------------------------------

    def _call_next(
        self,
        plan_wire: Dict[str, Any],
        plan: ExecutionPlan,
        position: int,
        xid: str = "",
    ) -> Tuple[List[PartialTuple], List[Dict[str, Any]]]:
        next_step = plan.step(position + 1)
        proxy = self._node.proxy(next_step.url)
        response = proxy.call(
            "PerformXMatch", plan=plan_wire, position=position + 1, xid=xid
        )
        stats_chain = list(response.get("stats") or [])
        rowset = receive_rowset(response, proxy)
        incoming = rowset_to_tuples(
            rowset,
            plan.member_aliases_after(position + 1),
            plan.attr_columns_after(position + 1),
        )
        return incoming, stats_chain

    def _respond(
        self,
        rowset: WireRowSet,
        stats: List[Dict[str, Any]],
        qid: str = "",
    ) -> Dict[str, Any]:
        return self.sender.respond(rowset, {"stats": stats}, query_id=qid)

    # -- the two step kinds ---------------------------------------------------------

    def _seed_step(
        self, plan: ExecutionPlan, me: PlanStep, qid: str = ""
    ) -> Tuple[List[PartialTuple], Dict[str, Any]]:
        """Last node on the list: run the node query, emit 1-tuples."""
        if self._node.shard_set is not None:
            return self._sharded_seed(plan, me, qid=qid)
        wrapper = self._node.wrapper
        db = wrapper.db
        before = (db.buffer.stats.logical_reads, db.buffer.stats.physical_reads)
        query = self._node_query_ast(plan, me)
        result = wrapper.execute_ast(query, epoch=me.epoch)
        attr_names = [column for column, _, _ in me.attr_select]
        objects = [
            LocalObject(
                object_id=row[0],
                position=radec_to_vector(row[1], row[2]),
                attributes=dict(zip(attr_names, row[3:])),
            )
            for row in result.rows
        ]
        tuples = seed_tuples(me.alias, objects, arcsec_to_rad(me.sigma_arcsec))
        stats = self._stats_dict(me, role="seed", tuples_in=0)
        stats["rows_examined"] = result.stats.rows_examined
        stats["candidates_tested"] = result.stats.rows_returned
        stats["logical_reads"] = db.buffer.stats.logical_reads - before[0]
        stats["physical_reads"] = db.buffer.stats.physical_reads - before[1]
        self._node.charge_processing(result.stats.rows_examined)
        return tuples, stats

    def _local_step(
        self,
        plan: ExecutionPlan,
        me: PlanStep,
        incoming: List[PartialTuple],
        position: Optional[int] = None,
        qid: str = "",
    ) -> Tuple[List[PartialTuple], Dict[str, Any]]:
        """Middle/first nodes: temp table + sp_xmatch + extend/filter."""
        if self._node.shard_set is not None:
            if position is None:
                position = plan.steps.index(me)
            return self._sharded_local(plan, me, incoming, position, qid=qid)
        from repro.db.schema import Column
        from repro.db.types import ColumnType
        from repro.skynode.xmatch_proc import PROCEDURE_NAME

        db = self._node.wrapper.db
        before = (db.buffer.stats.logical_reads, db.buffer.stats.physical_reads)
        temp = db.create_temp_table(
            "xmatch",
            [
                Column("seq", ColumnType.INT, nullable=False),
                Column("a", ColumnType.FLOAT, nullable=False),
                Column("ax", ColumnType.FLOAT, nullable=False),
                Column("ay", ColumnType.FLOAT, nullable=False),
                Column("az", ColumnType.FLOAT, nullable=False),
            ],
        )
        try:
            for seq, partial in enumerate(incoming):
                temp.insert((seq, partial.acc.a, partial.acc.ax,
                             partial.acc.ay, partial.acc.az))
            area_region = (
                region_for(plan.area) if plan.area is not None else None
            )
            residual = (
                parse_expression(me.residual_sql) if me.residual_sql else None
            )
            proc_result = db.call_procedure(
                PROCEDURE_NAME,
                temp_table=temp.name,
                primary_table=me.table,
                id_column=me.id_column,
                ra_column=me.ra_column,
                dec_column=me.dec_column,
                alias=me.alias,
                sigma_arcsec=me.sigma_arcsec,
                threshold=plan.threshold,
                area=area_region,
                residual=residual,
                attr_columns=[column for column, _, _ in me.attr_select],
                kernel=self._node.xmatch_kernel,
                engine=self._node.match_engine,
                epoch=me.epoch,
            )
        finally:
            db.drop_table(temp.name)  # "The temporary table is deleted."

        if me.dropout:
            tuples = [
                partial
                for seq, partial in enumerate(incoming)
                if seq not in proc_result.matches
            ]
        else:
            sigma_rad = arcsec_to_rad(me.sigma_arcsec)
            tuples = [
                incoming[seq].extended(me.alias, obj, sigma_rad)
                for seq, objects in sorted(proc_result.matches.items())
                for obj in objects
            ]
        stats = self._stats_dict(
            me,
            role="dropout" if me.dropout else "match",
            tuples_in=len(incoming),
        )
        stats["rows_examined"] = proc_result.stats.rows_examined
        stats["candidates_tested"] = proc_result.stats.candidates_tested
        stats["logical_reads"] = db.buffer.stats.logical_reads - before[0]
        stats["physical_reads"] = db.buffer.stats.physical_reads - before[1]
        self._node.charge_processing(proc_result.stats.rows_examined)
        return tuples, stats

    # -- scatter-gather: the coordinating side ------------------------------------

    def _require_network(self):
        network = self._node.network
        if network is None:
            raise ExecutionError(
                "sharded execution requires an attached network"
            )
        return network

    def _sharded_seed(
        self, plan: ExecutionPlan, me: PlanStep, qid: str = ""
    ) -> Tuple[List[PartialTuple], Dict[str, Any]]:
        """Seed hop as a scatter-gather fan-out over this node's shards.

        Shards whose ownership cannot intersect the AREA are pruned; the
        rest run their seed slices in parallel (failing over across each
        shard's endpoint candidates), and the gathered rows are re-sorted
        into the monolithic probe order before seeding 1-tuples. Stats
        are summed across shards — the partition makes the sums equal the
        monolithic counts — and processing time is charged on the shards
        (inside their branches), never again here.
        """
        network = self._require_network()
        shard_set = self._node.shard_set
        stats = self._stats_dict(me, role="seed", tuples_in=0)
        members = prune_members(shard_set.members, plan.area)
        if not members:
            return [], stats
        plan_wire = plan.to_wire()
        position = len(plan.steps) - 1
        outcomes: Dict[str, Any] = {}
        with network.parallel():
            for member in members:
                with network.branch():
                    outcomes[member.name] = self._seed_one_shard(
                        member, plan_wire, position, qid
                    )
        self._check_shard_outcomes(outcomes, me)
        rows = [row for outcome in outcomes.values() for row in outcome[0]]
        spec = self._node.wrapper.db.table(me.table).spatial
        use_probe_order = (
            plan.area is not None
            and spec is not None
            and self._node.wrapper.db.use_spatial_index
        )
        if use_probe_order:
            merged = merge_seed_rows(
                rows,
                htm_depth=spec.htm_depth,
                full_ranges=cover(region_for(plan.area), spec.htm_depth).full,
            )
        else:
            merged = merge_seed_rows(rows, htm_depth=0, full_ranges=None)
        attr_names = [column for column, _, _ in me.attr_select]
        objects = [
            LocalObject(
                object_id=row[0],
                position=radec_to_vector(float(row[1]), float(row[2])),
                attributes=dict(zip(attr_names, row[3:3 + len(attr_names)])),
            )
            for row in merged
        ]
        tuples = seed_tuples(me.alias, objects, arcsec_to_rad(me.sigma_arcsec))
        for outcome in outcomes.values():
            self._fold_shard_stats(stats, outcome[1])
        return tuples, stats

    def _seed_one_shard(
        self,
        member: ShardMember,
        plan_wire: Dict[str, Any],
        position: int,
        qid: str,
    ) -> Optional[Tuple[List[Tuple[Any, ...]], Dict[str, Any]]]:
        """One shard's seed slice, failing over across its candidates."""
        for url in member.candidate_urls("crossmatch"):
            proxy = self._node.proxy(url)
            try:
                response = proxy.call(
                    "ShardSeed", plan=plan_wire, position=position, qid=qid
                )
                rowset = receive_rowset(response, proxy)
                return list(rowset.rows), dict(response.get("stats") or {})
            except TransportError:
                continue
        return None

    def _sharded_local(
        self,
        plan: ExecutionPlan,
        me: PlanStep,
        incoming: List[PartialTuple],
        position: int,
        qid: str = "",
    ) -> Tuple[List[PartialTuple], Dict[str, Any]]:
        """Match/dropout hop as a scatter-gather fan-out over shards.

        Each incoming tuple is routed to the shards whose ownership its
        search cap can touch (zone key; the HTM key broadcasts), shipped
        in staged slices, matched shard-locally, and the gathered match
        rows are merged back into the monolithic ``sorted(matches)``
        emission order before the extend/filter logic runs here.
        """
        network = self._require_network()
        shard_set = self._node.shard_set
        stats = self._stats_dict(
            me,
            role="dropout" if me.dropout else "match",
            tuples_in=len(incoming),
        )
        sigma_rad = arcsec_to_rad(me.sigma_arcsec)
        assignments: Dict[str, List[Tuple[int, PartialTuple]]] = {
            member.name: [] for member in shard_set.members
        }
        for seq, partial in enumerate(incoming):
            routed = self._route_tuple(
                shard_set.members, partial, sigma_rad, plan.threshold
            )
            for member in routed:
                assignments[member.name].append((seq, partial))
        active = [
            member
            for member in shard_set.members
            if assignments[member.name]
        ]
        if not active:
            return (list(incoming) if me.dropout else []), stats
        plan_wire = plan.to_wire()
        outcomes: Dict[str, Any] = {}
        with network.parallel():
            for member in active:
                with network.branch():
                    outcomes[member.name] = self._xmatch_one_shard(
                        member,
                        plan_wire,
                        position,
                        assignments[member.name],
                        qid,
                    )
        self._check_shard_outcomes(outcomes, me)
        rows = [row for outcome in outcomes.values() for row in outcome[0]]
        merged = merge_match_lists(rows)
        if me.dropout:
            matched = {seq for seq, _ in merged}
            tuples = [
                partial
                for seq, partial in enumerate(incoming)
                if seq not in matched
            ]
        else:
            attr_names = [column for column, _, _ in me.attr_select]
            tuples = []
            for seq, seq_rows in merged:
                for row in seq_rows:
                    obj = LocalObject(
                        object_id=row[2],
                        position=radec_to_vector(float(row[3]), float(row[4])),
                        attributes=dict(zip(attr_names, row[5:])),
                    )
                    tuples.append(
                        incoming[seq].extended(me.alias, obj, sigma_rad)
                    )
        for outcome in outcomes.values():
            self._fold_shard_stats(stats, outcome[1])
        return tuples, stats

    def _route_tuple(
        self,
        members: Tuple[ShardMember, ...],
        partial: PartialTuple,
        sigma_rad: float,
        threshold: float,
    ) -> List[ShardMember]:
        """The shards one tuple's search cap can touch (superset, exact-safe)."""
        from repro.skynode.xmatch_proc import _cap_bounds

        radius = partial.acc.search_radius(sigma_rad, threshold)
        try:
            center = partial.acc.best_position()
        except GeometryError:
            # No prior observations: the search is unbounded — broadcast.
            return [m for m in members if not m.ownership.empty]
        _, r_eff = _cap_bounds(radius)
        dec_c = math.degrees(math.asin(max(-1.0, min(1.0, center[2]))))
        return members_for_tuple(members, dec_c, math.degrees(r_eff))

    def _xmatch_one_shard(
        self,
        member: ShardMember,
        plan_wire: Dict[str, Any],
        position: int,
        pairs: List[Tuple[int, PartialTuple]],
        qid: str,
    ) -> Optional[Tuple[List[Tuple[Any, ...]], Dict[str, Any]]]:
        """Stage one shard's tuple subset, match it, gather the rows.

        Staging and matching must land on the *same* endpoint, so a
        transport failure anywhere in the sequence restarts the whole
        stage-and-match on the next candidate (a fresh replica holds no
        staged rows). Seqs are the original chain seqs, so the shard's
        match keys line up with ``incoming`` at the coordinator.
        """
        xmid = f"{self._node.info.archive}-xm{next(self._xmid_counter)}"
        columns = [
            ("seq", "int"),
            ("a", "double"),
            ("ax", "double"),
            ("ay", "double"),
            ("az", "double"),
        ]
        staged_rows = [
            (seq, partial.acc.a, partial.acc.ax, partial.acc.ay,
             partial.acc.az)
            for seq, partial in pairs
        ]
        for url in member.candidate_urls("crossmatch"):
            proxy = self._node.proxy(url)
            try:
                for start in range(0, len(staged_rows), SHARD_STAGE_ROWS):
                    proxy.call(
                        "ShardStage",
                        xmid=xmid,
                        rows=WireRowSet(
                            columns,
                            staged_rows[start:start + SHARD_STAGE_ROWS],
                        ),
                        qid=qid,
                    )
                response = proxy.call(
                    "ShardXMatch",
                    xmid=xmid,
                    plan=plan_wire,
                    position=position,
                    qid=qid,
                )
                rowset = receive_rowset(response, proxy)
                return list(rowset.rows), dict(response.get("stats") or {})
            except TransportError:
                continue
        return None

    @staticmethod
    def _check_shard_outcomes(
        outcomes: Dict[str, Any], me: PlanStep
    ) -> None:
        dead = sorted(
            name for name, outcome in outcomes.items() if outcome is None
        )
        if dead:
            raise ShardUnavailableError(
                f"shard {dead[0]!r} of archive {me.archive!r} is "
                "unreachable on every endpoint candidate",
                shard=dead[0],
            )

    @staticmethod
    def _fold_shard_stats(
        total: Dict[str, Any], shard_stats: Dict[str, Any]
    ) -> None:
        for key in (
            "rows_examined",
            "candidates_tested",
            "logical_reads",
            "physical_reads",
        ):
            total[key] += int(shard_stats.get(key, 0))

    # -- scatter-gather: the shard side -------------------------------------------

    def _shard_seed(
        self, plan: Dict[str, Any], position: int, qid: str = ""
    ) -> Dict[str, Any]:
        plan_obj = ExecutionPlan.from_wire(plan)
        position = int(position)
        me = self._validate_step(plan_obj, position)
        wrapper = self._node.wrapper
        db = wrapper.db
        before = (
            db.buffer.stats.logical_reads, db.buffer.stats.physical_reads
        )
        query = self._node_query_ast(
            plan_obj, me, extra_columns=(SHARD_POS_COLUMN,)
        )
        result = wrapper.execute_ast(query, epoch=me.epoch)
        rowset = wrapper.resultset_to_wire(result, query)
        stats = {
            "rows_examined": result.stats.rows_examined,
            "candidates_tested": result.stats.rows_returned,
            "logical_reads": db.buffer.stats.logical_reads - before[0],
            "physical_reads": db.buffer.stats.physical_reads - before[1],
        }
        self._node.charge_processing(result.stats.rows_examined)
        return self.sender.respond(
            rowset, {"stats": stats}, query_id=str(qid)
        )

    def _shard_stage(
        self, xmid: str, rows: WireRowSet, qid: str = ""
    ) -> Dict[str, Any]:
        self._reap_stagings()
        if not isinstance(rows, WireRowSet):
            raise ExecutionError(f"malformed ShardStage rowset: {rows!r}")
        staging = self._stagings.get(str(xmid))
        if staging is None:
            staging = _ShardStaging(qid=str(qid))
            self._stagings[str(xmid)] = staging
        for row in rows.rows:
            staging.rows[int(row[0])] = tuple(row)
        self._touch_staging(staging)
        return {"staged": len(staging.rows)}

    def _shard_xmatch(
        self,
        xmid: str,
        plan: Dict[str, Any],
        position: int,
        qid: str = "",
    ) -> Dict[str, Any]:
        from repro.db.schema import Column
        from repro.db.types import ColumnType
        from repro.skynode.xmatch_proc import PROCEDURE_NAME

        self._reap_stagings()
        plan_obj = ExecutionPlan.from_wire(plan)
        position = int(position)
        me = self._validate_step(plan_obj, position)
        staging = self._stagings.get(str(xmid))
        staged = sorted(staging.rows.items()) if staging is not None else []
        if staging is not None:
            self._touch_staging(staging)
        db = self._node.wrapper.db
        before = (
            db.buffer.stats.logical_reads, db.buffer.stats.physical_reads
        )
        temp = db.create_temp_table(
            "xmatch",
            [
                Column("seq", ColumnType.INT, nullable=False),
                Column("a", ColumnType.FLOAT, nullable=False),
                Column("ax", ColumnType.FLOAT, nullable=False),
                Column("ay", ColumnType.FLOAT, nullable=False),
                Column("az", ColumnType.FLOAT, nullable=False),
            ],
        )
        attr_columns = [column for column, _, _ in me.attr_select]
        try:
            for seq, row in staged:
                temp.insert((seq, float(row[1]), float(row[2]),
                             float(row[3]), float(row[4])))
            fetch_columns = list(attr_columns)
            for column in (me.ra_column, me.dec_column, SHARD_POS_COLUMN):
                if column not in fetch_columns:
                    fetch_columns.append(column)
            proc_result = db.call_procedure(
                PROCEDURE_NAME,
                temp_table=temp.name,
                primary_table=me.table,
                id_column=me.id_column,
                ra_column=me.ra_column,
                dec_column=me.dec_column,
                alias=me.alias,
                sigma_arcsec=me.sigma_arcsec,
                threshold=plan_obj.threshold,
                area=(
                    region_for(plan_obj.area)
                    if plan_obj.area is not None
                    else None
                ),
                residual=(
                    parse_expression(me.residual_sql)
                    if me.residual_sql
                    else None
                ),
                attr_columns=fetch_columns,
                kernel=self._node.xmatch_kernel,
                engine=self._node.match_engine,
                epoch=me.epoch,
            )
        finally:
            db.drop_table(temp.name)
        columns = [
            ("seq", "int"),
            (SHARD_POS_COLUMN, "int"),
            (me.id_column, "int"),
            (me.ra_column, "double"),
            (me.dec_column, "double"),
        ] + [(column, typecode) for column, _, typecode in me.attr_select]
        out_rows: List[Tuple[Any, ...]] = []
        for seq, objects in sorted(proc_result.matches.items()):
            for obj in objects:
                attrs = obj.attributes
                values = [
                    seq,
                    int(attrs[SHARD_POS_COLUMN]),
                    obj.object_id,
                    float(attrs[me.ra_column]),
                    float(attrs[me.dec_column]),
                ]
                values.extend(attrs[column] for column in attr_columns)
                out_rows.append(tuple(
                    float(v)
                    if columns[i][1] == "double" and isinstance(v, int)
                    and not isinstance(v, bool) else v
                    for i, v in enumerate(values)
                ))
        stats = {
            "rows_examined": proc_result.stats.rows_examined,
            "candidates_tested": proc_result.stats.candidates_tested,
            "logical_reads": db.buffer.stats.logical_reads - before[0],
            "physical_reads": db.buffer.stats.physical_reads - before[1],
        }
        self._node.charge_processing(proc_result.stats.rows_examined)
        return self.sender.respond(
            WireRowSet(columns, out_rows), {"stats": stats},
            query_id=str(qid),
        )

    def _node_query_ast(
        self,
        plan: ExecutionPlan,
        me: PlanStep,
        extra_columns: Tuple[str, ...] = (),
    ) -> Query:
        items = [
            SelectItem(ColumnRef(me.alias, me.id_column)),
            SelectItem(ColumnRef(me.alias, me.ra_column)),
            SelectItem(ColumnRef(me.alias, me.dec_column)),
        ]
        items.extend(
            SelectItem(ColumnRef(me.alias, column))
            for column, _, _ in me.attr_select
        )
        items.extend(
            SelectItem(ColumnRef(me.alias, column)) for column in extra_columns
        )
        where: Optional[Expr] = None
        if plan.area is not None:
            where = plan.area  # AREA clauses are themselves WHERE conjuncts
        if me.residual_sql:
            residual = parse_expression(me.residual_sql)
            where = residual if where is None else BinaryOp("AND", where, residual)
        return Query(
            items=tuple(items),
            tables=(TableRef(None, me.table, me.alias),),
            where=where,
        )

    @staticmethod
    def _stats_dict(me: PlanStep, *, role: str, tuples_in: int) -> Dict[str, Any]:
        return {
            "archive": me.archive,
            "alias": me.alias,
            "role": role,
            "tuples_in": tuples_in,
            "tuples_out": 0,
            "rows_examined": 0,
            "candidates_tested": 0,
            "logical_reads": 0,
            "physical_reads": 0,
            "sql": me.sql,
        }
