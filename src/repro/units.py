"""Angle unit conversions.

All internal geometry is done in radians on the unit sphere; the public query
language follows the paper's conventions: AREA coordinates in degrees, AREA
radius and positional errors (sigma) in arcseconds.
"""

from __future__ import annotations

import math

DEG_PER_RAD = 180.0 / math.pi
ARCMIN_PER_DEG = 60.0
ARCSEC_PER_DEG = 3600.0
ARCSEC_PER_RAD = ARCSEC_PER_DEG * DEG_PER_RAD


def deg_to_rad(degrees: float) -> float:
    """Convert degrees to radians."""
    return degrees / DEG_PER_RAD


def rad_to_deg(radians: float) -> float:
    """Convert radians to degrees."""
    return radians * DEG_PER_RAD


def arcsec_to_rad(arcsec: float) -> float:
    """Convert arcseconds to radians."""
    return arcsec / ARCSEC_PER_RAD


def rad_to_arcsec(radians: float) -> float:
    """Convert radians to arcseconds."""
    return radians * ARCSEC_PER_RAD


def arcmin_to_rad(arcmin: float) -> float:
    """Convert arcminutes to radians."""
    return deg_to_rad(arcmin / ARCMIN_PER_DEG)


def rad_to_arcmin(radians: float) -> float:
    """Convert radians to arcminutes."""
    return rad_to_deg(radians) * ARCMIN_PER_DEG


def normalize_ra_deg(ra: float) -> float:
    """Normalize a right ascension into [0, 360) degrees."""
    ra = math.fmod(ra, 360.0)
    if ra < 0.0:
        ra += 360.0
    return ra


def validate_dec_deg(dec: float) -> float:
    """Validate a declination in degrees, returning it unchanged.

    Raises ``ValueError`` outside [-90, 90].
    """
    if not -90.0 <= dec <= 90.0:
        raise ValueError(f"declination {dec!r} outside [-90, 90] degrees")
    return dec
