"""Shared benchmark scenarios: canned federations and the paper's queries."""

from __future__ import annotations

import functools
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.db.engine import Database
from repro.db.table import SpatialSpec
from repro.federation.builder import Federation, FederationConfig, build_federation
from repro.portal.portal import Portal
from repro.services.retry import RetryPolicy
from repro.transport.faults import FaultPlan
from repro.skynode.node import SkyNode
from repro.skynode.wrapper import ArchiveInfo
from repro.sphere.coords import vector_to_radec
from repro.sphere.random import perturb_gaussian
from repro.sphere.vector import Vec3
from repro.transport.network import SimulatedNetwork
from repro.units import arcsec_to_rad
from repro.workloads.skysim import SkyField

#: The sample query of Section 5.2, adapted to the reproduction's schemas.
PAPER_QUERY = """
SELECT O.object_id, O.ra, T.obj_id
FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P
WHERE AREA(185.0, -0.5, {radius}) AND XMATCH(O, T, P) < 3.5
  AND O.type = GALAXY AND O.i_flux - T.i_flux > 2
"""

#: The drop-out variant the paper walks through (``!P``).
PAPER_QUERY_DROPOUT = """
SELECT O.object_id, O.ra, T.obj_id
FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P
WHERE AREA(185.0, -0.5, {radius}) AND XMATCH(O, T, !P) < 3.5
  AND O.type = GALAXY
"""


def paper_query(radius_arcsec: float = 900.0, dropout: bool = False) -> str:
    """The Section 5.2 query with a configurable AREA radius."""
    template = PAPER_QUERY_DROPOUT if dropout else PAPER_QUERY
    return template.format(radius=radius_arcsec)


def zipf_workload(
    n_queries: int,
    pool_size: int = 4,
    *,
    s: float = 1.1,
    seed: int = 0,
    tenants: Sequence[str] = ("default",),
    base_radius: float = 1500.0,
    step: float = 300.0,
) -> List[Dict[str, object]]:
    """A zipf-repeated multi-tenant workload over a pool of AREA queries.

    Pool rank ``r`` is the Section 5.2 query at radius
    ``base_radius - r * step`` (descending: the hottest query is the
    *widest* circle, so colder, narrower queries are spatially contained
    in it — the regime where the semantic cache's containment reuse
    pays on top of exact repeats). Rank ``r`` is drawn with probability
    proportional to ``1 / (r + 1) ** s``; job ``i`` belongs to
    ``tenants[i % len(tenants)]``. Returns job dicts consumable by
    :meth:`repro.portal.scheduler.QueryScheduler.run`.
    """
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    if base_radius - (pool_size - 1) * step <= 0:
        raise ValueError("pool radii must stay positive; shrink pool/step")
    rng = random.Random(seed)
    pool = [
        paper_query(base_radius - step * rank) for rank in range(pool_size)
    ]
    weights = [1.0 / (rank + 1) ** s for rank in range(pool_size)]
    picks = rng.choices(range(pool_size), weights=weights, k=n_queries)
    return [
        {"sql": pool[pick], "tenant": tenants[i % len(tenants)]}
        for i, pick in enumerate(picks)
    ]


@functools.lru_cache(maxsize=4)
def standard_federation(
    n_bodies: int = 1500, radius_arcsec: float = 1800.0, seed: int = 1234
) -> Federation:
    """A cached default three-survey federation (benchmarks share it)."""
    return build_federation(
        FederationConfig(
            n_bodies=n_bodies,
            seed=seed,
            sky_field=SkyField(185.0, -0.5, radius_arcsec),
        )
    )


def build_figure2_federation() -> Tuple[Federation, Dict[str, Dict[str, int]]]:
    """The exact Figure 2 scenario as a running federation.

    Two bodies, three archives O(SDSS-like), T(TWOMASS-like),
    P(FIRST-like): body *a* is observed consistently by all three; body
    *b*'s P observation is displaced far outside the error bound. Returns
    the federation plus ``{body: {archive: object_id}}`` for assertions.
    """
    import random

    rng = random.Random(42)
    from repro.sphere.coords import radec_to_vector

    sigma = {"SDSS": 0.2, "TWOMASS": 0.6, "FIRST": 1.0}  # arcsec
    a_true = radec_to_vector(185.0, -0.5)
    b_true = radec_to_vector(185.01, -0.508)

    def obs(true: Vec3, archive: str, offset_arcsec: float = 0.0) -> Vec3:
        scattered = perturb_gaussian(
            rng, true, arcsec_to_rad(sigma[archive] * 0.5)
        )
        if offset_arcsec:
            # displace deterministically by walking north
            from repro.sphere.random import tangent_basis
            from repro.sphere.vector import add, normalize, scale

            _, north = tangent_basis(scattered)
            scattered = normalize(
                add(scattered, scale(north, arcsec_to_rad(offset_arcsec)))
            )
        return scattered

    placements = {
        "SDSS": [("a", obs(a_true, "SDSS")), ("b", obs(b_true, "SDSS"))],
        "TWOMASS": [("a", obs(a_true, "TWOMASS")), ("b", obs(b_true, "TWOMASS"))],
        # body b's P observation is ~30 sigma off: no cross match.
        "FIRST": [("a", obs(a_true, "FIRST")), ("b", obs(b_true, "FIRST", 30.0))],
    }

    network = SimulatedNetwork()
    portal = Portal()
    portal.attach(network)
    nodes: Dict[str, SkyNode] = {}
    ids: Dict[str, Dict[str, int]] = {"a": {}, "b": {}}
    from repro.db.schema import Column
    from repro.db.types import ColumnType

    for archive, entries in placements.items():
        db = Database(archive.lower(), page_size=16)
        db.create_table(
            "objects",
            [
                Column("object_id", ColumnType.INT, nullable=False),
                Column("ra", ColumnType.FLOAT, nullable=False),
                Column("dec", ColumnType.FLOAT, nullable=False),
            ],
            spatial=SpatialSpec("ra", "dec", htm_depth=12),
        )
        for object_id, (body, position) in enumerate(entries, start=1):
            ra, dec = vector_to_radec(position)
            db.insert("objects", [(object_id, ra, dec)])
            ids[body][archive] = object_id
        info = ArchiveInfo(
            archive=archive,
            sigma_arcsec=sigma[archive],
            primary_table="objects",
            object_id_column="object_id",
            ra_column="ra",
            dec_column="dec",
        )
        node = SkyNode(db, info, hostname=f"{archive.lower()}.fig2.skyquery.net")
        node.attach(network)
        node.register_with_portal(portal.service_url("registration"))
        nodes[archive] = node

    federation = Federation(
        config=FederationConfig(surveys=(), n_bodies=2, seed=42),
        network=network,
        portal=portal,
        nodes=nodes,
        bodies=[],
        truth={},
    )
    return federation, ids


def fresh_federation(
    n_bodies: int = 1500,
    radius_arcsec: float = 1800.0,
    seed: int = 1234,
    *,
    parser_memory_limit: Optional[int] = None,
    chunk_budget_bytes: Optional[int] = None,
    buffer_pages: int = 512,
    retry_policy: Optional[RetryPolicy] = None,
    health_probes: bool = True,
    fault_plan: Optional[FaultPlan] = None,
    replicas: int = 0,
    chain_mode: str = "store-forward",
    ingest: bool = False,
    keep_epochs: Optional[int] = 8,
    scheduler=None,
    cache=None,
    match_engine: Optional[str] = None,
) -> Federation:
    """An uncached federation with experiment-specific knobs."""
    from repro.skynode.node import DEFAULT_PARSER_MEMORY_LIMIT

    config = FederationConfig(
            n_bodies=n_bodies,
            seed=seed,
            sky_field=SkyField(185.0, -0.5, radius_arcsec),
            parser_memory_limit=(
                parser_memory_limit
                if parser_memory_limit is not None
                else DEFAULT_PARSER_MEMORY_LIMIT
            ),
            chunk_budget_bytes=chunk_budget_bytes,
            buffer_pages=buffer_pages,
            retry_policy=retry_policy,
            health_probes=health_probes,
            fault_plan=fault_plan,
            replicas=replicas,
            chain_mode=chain_mode,
            ingest=ingest,
            keep_epochs=keep_epochs,
            scheduler=scheduler,
            cache=cache,
        )
    if match_engine is not None:
        config.match_engine = match_engine
    return build_federation(config)
