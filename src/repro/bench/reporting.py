"""Experiment report objects and their text/markdown rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from repro.client.formatting import format_table


@dataclass
class ExperimentReport:
    """One experiment's regenerated table."""

    exp_id: str
    title: str
    source: str  # which figure/claim of the paper this reproduces
    headers: List[str]
    rows: List[Tuple[Any, ...]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one result row."""
        self.rows.append(tuple(values))

    def note(self, text: str) -> None:
        """Append a free-form observation."""
        self.notes.append(text)

    def to_text(self) -> str:
        """Human-readable rendering for benchmark output."""
        lines = [f"== {self.exp_id}: {self.title} ==", f"   (paper: {self.source})"]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Markdown rendering for EXPERIMENTS.md."""
        lines = [f"### {self.exp_id} — {self.title}", "", f"*Paper source:* {self.source}", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_md_cell(v) for v in row) + " |")
        if self.notes:
            lines.append("")
            lines.extend(f"- {note}" for note in self.notes)
        lines.append("")
        return "\n".join(lines)


def _md_cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
