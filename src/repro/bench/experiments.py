"""The eleven experiment runners (one per figure/claim — see DESIGN.md)."""

from __future__ import annotations

import random
import time
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.baselines.pull_mediator import PullMediator
from repro.bench.reporting import ExperimentReport
from repro.bench.scenarios import (
    build_figure2_federation,
    fresh_federation,
    paper_query,
    zipf_workload,
)
from repro.errors import SoapFaultError
from repro.federation.builder import FederationConfig, build_federation
from repro.portal.decompose import decompose
from repro.portal.planner import OrderingStrategy
from repro.soap.encoding import (
    WireRowSet,
    decode_binary_rowset,
    encode_binary_rowset,
)
from repro.soap.envelope import build_rpc_response, parse_rpc_response
from repro.sql.parser import parse_query
from repro.units import arcsec_to_rad
from repro.workloads.skysim import SkyField, SurveySpec


# -- E1: Figure 1, the architecture / registration handshake -------------------


def run_e1_architecture(n_bodies: int = 300) -> ExperimentReport:
    """Registration traffic: which services talk, in which order."""
    fed = fresh_federation(n_bodies=n_bodies)
    report = ExperimentReport(
        exp_id="E1",
        title="Architecture: registration handshake over SOAP/HTTP",
        source="Figure 1 / Section 5.1",
        headers=["operation", "direction", "messages", "wire bytes"],
    )
    registration = [
        m for m in fed.network.metrics.messages if m.phase == "registration"
    ]
    grouped: Dict[Tuple[str, str], List[int]] = defaultdict(list)
    for message in registration:
        direction = (
            "node->portal" if message.dst.startswith("portal") else
            "portal->node" if message.src.startswith("portal") else
            f"{message.src.split('.')[0]}->{message.dst.split('.')[0]}"
        )
        grouped[(message.operation, direction)].append(message.wire_bytes)
    for (operation, direction), sizes in sorted(grouped.items()):
        report.add_row(operation, direction, len(sizes), sum(sizes))
    ops_in_order = [m.operation for m in registration if m.kind == "request"]
    per_node = len(ops_in_order) // max(1, len(fed.nodes))
    report.note(
        f"per-node handshake (request order): {ops_in_order[:per_node]} — "
        "Register triggers the Portal's GetSchema + GetInfo callbacks, "
        "matching Figure 1."
    )
    report.note(
        f"{len(fed.nodes)} SkyNodes registered; catalog holds "
        f"{fed.portal.catalog.archives()}"
    )
    return report


# -- E2: Figure 2, XMATCH semantics ------------------------------------------------


def run_e2_xmatch_semantics() -> ExperimentReport:
    """The two-body scenario: mandatory vs drop-out selection."""
    fed, ids = build_figure2_federation()
    client = fed.client()
    base = (
        "SELECT O.object_id, T.object_id, P.object_id "
        "FROM SDSS:objects O, TWOMASS:objects T, FIRST:objects P "
        "WHERE AREA(185.0, -0.5, 180.0) AND XMATCH({terms}) < 3.5"
    )
    report = ExperimentReport(
        exp_id="E2",
        title="XMATCH semantics on the Figure 2 scenario",
        source="Figure 2 / Section 5.2",
        headers=["query", "selected sets", "expected", "match"],
    )

    res_mand = client.submit(base.format(terms="O, T, P"))
    got_mand = sorted(tuple(row[:3]) for row in res_mand.rows)
    expected_mand = [
        (ids["a"]["SDSS"], ids["a"]["TWOMASS"], ids["a"]["FIRST"])
    ]
    report.add_row(
        "XMATCH(O,T,P) < 3.5",
        got_mand,
        expected_mand,
        got_mand == expected_mand,
    )

    dropout_sql = (
        "SELECT O.object_id, T.object_id "
        "FROM SDSS:objects O, TWOMASS:objects T, FIRST:objects P "
        "WHERE AREA(185.0, -0.5, 180.0) AND XMATCH(O, T, !P) < 3.5"
    )
    res_drop = client.submit(dropout_sql)
    got_drop = sorted(tuple(row[:2]) for row in res_drop.rows)
    expected_drop = [(ids["b"]["SDSS"], ids["b"]["TWOMASS"])]
    report.add_row(
        "XMATCH(O,T,!P) < 3.5",
        got_drop,
        expected_drop,
        got_drop == expected_drop,
    )
    report.note(
        "Body a is selected by the mandatory form only; body b (whose P "
        "observation is ~30 sigma away) only by the drop-out form — "
        "exactly Figure 2."
    )
    return report


# -- E3: Figure 3, the 7-step execution flow -----------------------------------------


def run_e3_execution_flow(n_bodies: int = 1200) -> ExperimentReport:
    """Trace the sample query through the Portal and the chain."""
    fed = fresh_federation(n_bodies=n_bodies)
    fed.network.metrics.reset()
    client = fed.client()
    result = client.submit(paper_query(radius_arcsec=900.0))
    metrics = fed.network.metrics

    report = ExperimentReport(
        exp_id="E3",
        title="Execution flow of the Section 5.2 sample query",
        source="Figure 3 / Section 5.3",
        headers=["step", "what happens", "measured"],
    )
    report.add_row(
        1,
        "Client submits the query to the Portal's SkyQuery service",
        f"{metrics.message_count(phase='client')} msgs, "
        f"{metrics.total_bytes(phase='client')} B (incl. final relay)",
    )
    report.add_row(
        2, "Portal decomposes the query into performance queries",
        f"{len(result.counts)} count-star queries (mandatory archives)",
    )
    report.add_row(
        3,
        "Performance queries go to each Query service as SOAP messages",
        f"{metrics.message_count(phase='performance-query')} msgs, "
        f"{metrics.total_bytes(phase='performance-query')} B",
    )
    report.add_row(
        4, "Count-star results arrive at the Portal",
        "; ".join(f"{alias}={count}" for alias, count in result.counts.items()),
    )
    plan_order = [
        (step["alias"], step["count_star"], bool(step["dropout"]))
        for step in (result.plan or {}).get("steps", [])
    ]
    report.add_row(
        5,
        "Portal builds the plan: decreasing count, drop-outs first",
        " -> ".join(
            f"{alias}({'drop' if dropout else count})"
            for alias, count, dropout in plan_order
        ),
    )
    chain = [
        f"{s['archive']}[{s['role']}] in={s['tuples_in']} out={s['tuples_out']}"
        for s in result.node_stats
    ]
    report.add_row(
        6,
        "Daisy chain executes in reverse list order (smallest node seeds)",
        "; ".join(chain),
    )
    report.add_row(
        7,
        "Partial results flow back; Portal projects and relays",
        f"{metrics.total_bytes(phase='crossmatch-chain')} B on the chain, "
        f"{len(result)} final rows",
    )
    return report


# -- E4: the count-star ordering claim --------------------------------------------


def run_e4_countstar_ordering(
    n_bodies: int = 1500,
    radii: Sequence[float] = (450.0, 900.0, 1800.0),
) -> ExperimentReport:
    """Chain bytes under the paper's ordering vs baselines."""
    fed = fresh_federation(n_bodies=n_bodies)
    client = fed.client()
    report = ExperimentReport(
        exp_id="E4",
        title="Count-star ordering reduces chain transmission",
        source="Section 5.3 ('the order based on the count star values will "
        "often decrease the network transmission costs')",
        headers=[
            "AREA radius (arcsec)", "ordering", "chain bytes",
            "chain msgs", "sim seconds", "rows",
        ],
    )
    strategies = [
        OrderingStrategy.COUNT_DESC,
        OrderingStrategy.COUNT_ASC,
        OrderingStrategy.RANDOM,
        OrderingStrategy.AS_WRITTEN,
    ]
    baseline_rows: Dict[float, int] = {}
    for radius in radii:
        for strategy in strategies:
            fed.network.metrics.reset()
            result = client.submit(
                paper_query(radius_arcsec=radius), strategy=strategy.value
            )
            metrics = fed.network.metrics
            report.add_row(
                radius,
                strategy.value,
                metrics.total_bytes(phase="crossmatch-chain"),
                metrics.message_count(phase="crossmatch-chain"),
                round(metrics.simulated_seconds, 3),
                len(result),
            )
            baseline_rows.setdefault(radius, len(result))
            if baseline_rows[radius] != len(result):
                report.note(
                    f"RESULT MISMATCH at radius {radius} for {strategy.value}!"
                )
    report.note(
        "Same result rows under every ordering (the algorithm is "
        "symmetric); count_desc ships the smallest partial results."
    )
    return report


# -- E5: chain shipping vs pull-to-portal ------------------------------------------


def run_e5_chain_vs_pull(
    n_bodies: int = 1500, radii: Sequence[float] = (450.0, 900.0, 1800.0)
) -> ExperimentReport:
    """SkyQuery's chained shipping vs the classic pull mediator."""
    fed = fresh_federation(n_bodies=n_bodies)
    client = fed.client()
    puller = PullMediator(fed.portal)
    report = ExperimentReport(
        exp_id="E5",
        title="Chained partial results vs pulling everything to the Portal",
        source="Section 5.1 ('SkyQuery, instead, moves the partial results "
        "... along a chain')",
        headers=[
            "AREA radius (arcsec)", "strategy", "data bytes", "messages",
            "sim seconds", "rows",
        ],
    )
    for radius in radii:
        sql = paper_query(radius_arcsec=radius)

        fed.network.metrics.reset()
        chain_result = client.submit(sql)
        m = fed.network.metrics
        chain_bytes = m.total_bytes(phase="crossmatch-chain") + m.total_bytes(
            phase="performance-query"
        )
        report.add_row(
            radius, "chain (SkyQuery)", chain_bytes,
            m.message_count(phase="crossmatch-chain")
            + m.message_count(phase="performance-query"),
            round(m.simulated_seconds, 3), len(chain_result),
        )

        fed.network.metrics.reset()
        pull_result = puller.execute(sql)
        m = fed.network.metrics
        report.add_row(
            radius, "pull-to-portal", m.total_bytes(phase="pull-mediator"),
            m.message_count(phase="pull-mediator"),
            round(m.simulated_seconds, 3), len(pull_result),
        )
        if sorted(chain_result.rows) != sorted(pull_result.rows):
            report.note(f"RESULT MISMATCH at radius {radius}!")
    report.note(
        "Both strategies return identical rows; the chain only ships "
        "surviving partial tuples while the pull baseline ships every "
        "AREA-qualified row of every archive."
    )
    return report


# -- E6: the ~10 MB XML parser failure and chunking ---------------------------------


def run_e6_chunking(
    n_bodies: int = 4000,
    parser_memory_limit: int = 1_000_000,
    budgets: Sequence[int] = (32_768, 65_536, 131_072),
) -> ExperimentReport:
    """Monolithic SOAP messages OOM the receiving parser; chunking works."""
    sql = (
        "SELECT O.object_id, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 1800.0) AND XMATCH(O, T) < 3.5"
    )
    report = ExperimentReport(
        exp_id="E6",
        title="XML parser memory ceiling and the chunking workaround",
        source="Section 6 ('The XML parser at the SkyNode would run out of "
        "memory while parsing SOAP messages of about 10 MB. We worked "
        "around by dividing large data sets into smaller chunks.')",
        headers=[
            "transfer mode", "outcome", "chain msgs", "control bytes",
            "chunk-fetch bytes", "max envelope B", "peak parse need B",
            "sim seconds",
        ],
    )

    def run(chunk_budget: Optional[int]) -> Tuple[str, Dict[str, Any]]:
        fed = fresh_federation(
            n_bodies=n_bodies,
            parser_memory_limit=parser_memory_limit,
            chunk_budget_bytes=chunk_budget,
        )
        fed.network.metrics.reset()
        client = fed.client()
        try:
            result = client.submit(sql)
            outcome = f"ok ({len(result)} rows)"
        except SoapFaultError as fault:
            outcome = f"FAULT: {fault.faultcode}"
        metrics = fed.network.metrics
        # Chunk drains run under their own phase label so payload bytes
        # separate from chain-control bytes in the accounting.
        chain = [
            m
            for m in metrics.messages
            if m.phase in ("crossmatch-chain", "chunk-transfer")
        ]
        peak = max(
            (node.parser.peak_memory_bytes for node in fed.nodes.values()),
            default=0,
        )
        return outcome, {
            "msgs": len(chain),
            "control": metrics.total_bytes(phase="crossmatch-chain"),
            "fetch": metrics.total_bytes(phase="chunk-transfer"),
            "max_envelope": max((m.wire_bytes for m in chain), default=0),
            "peak": peak,
            "sim": round(metrics.simulated_seconds, 3),
        }

    outcome, stats = run(None)
    report.add_row(
        "monolithic", outcome, stats["msgs"], stats["control"],
        stats["fetch"], stats["max_envelope"], stats["peak"], stats["sim"],
    )
    for budget in budgets:
        outcome, stats = run(budget)
        report.add_row(
            f"chunked <= {budget} B", outcome, stats["msgs"],
            stats["control"], stats["fetch"], stats["max_envelope"],
            stats["peak"], stats["sim"],
        )
    report.note(
        f"Receiver parser budget: {parser_memory_limit} B at 4x DOM "
        "expansion — documents above a quarter of the budget fail, "
        "mirroring the paper's ~10 MB ceiling (scaled down for test speed)."
    )
    report.note(
        "Smaller chunks -> more messages and more total bytes (per-message "
        "overhead), but bounded parser memory: the paper's trade-off."
    )
    return report


# -- E7: SOAP serialization overhead -----------------------------------------------


def run_e7_soap_overhead(
    row_counts: Sequence[int] = (100, 1000, 5000), repeats: int = 3
) -> ExperimentReport:
    """XML/SOAP codec vs a CORBA-style binary codec."""
    report = ExperimentReport(
        exp_id="E7",
        title="SOAP serialization overhead vs binary middleware",
        source="Section 6 ('SOAP is considered to be slower than other "
        "middleware, like, CORBA, because of the time spent for "
        "serialization and de-serialization')",
        headers=[
            "rows", "codec", "bytes", "encode ms", "decode ms",
            "size ratio", "time ratio",
        ],
    )
    rng = random.Random(7)
    for n_rows in row_counts:
        rowset = WireRowSet(
            [
                ("object_id", "int"),
                ("ra", "double"),
                ("dec", "double"),
                ("a", "double"),
                ("type", "string"),
            ],
            [
                (
                    i,
                    rng.uniform(0, 360),
                    rng.uniform(-90, 90),
                    rng.random(),
                    rng.choice(["GALAXY", "STAR", "QSO"]),
                )
                for i in range(n_rows)
            ],
        )

        def timed(fn) -> Tuple[Any, float]:
            best = float("inf")
            value = None
            for _ in range(repeats):
                start = time.perf_counter()
                value = fn()
                best = min(best, time.perf_counter() - start)
            return value, best * 1000.0

        xml_doc, xml_enc = timed(lambda: build_rpc_response("Q", rowset))
        _, xml_dec = timed(lambda: parse_rpc_response(xml_doc))
        xml_bytes = len(xml_doc.encode("utf-8"))

        blob, bin_enc = timed(lambda: encode_binary_rowset(rowset))
        _, bin_dec = timed(lambda: decode_binary_rowset(blob))

        report.add_row(
            n_rows, "SOAP/XML", xml_bytes, round(xml_enc, 3),
            round(xml_dec, 3), 1.0, 1.0,
        )
        bin_total = bin_enc + bin_dec
        xml_total = xml_enc + xml_dec
        report.add_row(
            n_rows, "binary", len(blob), round(bin_enc, 3), round(bin_dec, 3),
            round(len(blob) / xml_bytes, 3),
            round(bin_total / xml_total, 3) if xml_total else None,
        )
    report.note(
        "The XML form is several times larger and slower to (de)serialize "
        "— the overhead the paper accepts in exchange for interoperability."
    )
    return report


# -- E8: HTM range search vs full scan ----------------------------------------------


def run_e8_htm_rangesearch(
    n_objects: int = 20000,
    radii: Sequence[float] = (60.0, 300.0, 900.0),
    depths: Sequence[int] = (6, 8, 10, 12, 14),
) -> ExperimentReport:
    """The HTM 'helps in reducing spatial processing' (Section 5.1)."""
    from repro.db.engine import Database
    from repro.db.schema import Column
    from repro.db.table import SpatialSpec
    from repro.db.types import ColumnType
    from repro.sphere.coords import vector_to_radec
    from repro.sphere.random import random_in_cap
    from repro.sphere.coords import radec_to_vector

    report = ExperimentReport(
        exp_id="E8",
        title="HTM range search vs full scan (and depth ablation)",
        source="Sections 5.1/5.4 (HTM 'helps in reducing spatial processing "
        "at individual databases')",
        headers=[
            "config", "radius (arcsec)", "rows examined", "rows matched",
            "fraction examined", "wall ms",
        ],
    )
    rng = random.Random(11)
    center = radec_to_vector(185.0, -0.5)
    positions = [
        random_in_cap(rng, center, arcsec_to_rad(7200.0))
        for _ in range(n_objects)
    ]

    def make_db(depth: int) -> Database:
        db = Database(f"htm{depth}", page_size=128, buffer_pages=4096)
        db.create_table(
            "objects",
            [
                Column("object_id", ColumnType.INT, nullable=False),
                Column("ra", ColumnType.FLOAT, nullable=False),
                Column("dec", ColumnType.FLOAT, nullable=False),
            ],
            spatial=SpatialSpec("ra", "dec", htm_depth=depth),
        )
        rows = []
        for i, position in enumerate(positions):
            ra, dec = vector_to_radec(position)
            rows.append((i, ra, dec))
        db.insert("objects", rows)
        db.table("objects").spatial_entries()  # build the index up front
        return db

    db12 = make_db(12)
    for radius in radii:
        sql = f"SELECT count(*) FROM objects o WHERE AREA(185.0, -0.5, {radius})"
        for label, use_index in (("HTM depth 12", True), ("full scan", False)):
            db12.use_spatial_index = use_index
            start = time.perf_counter()
            result = db12.execute(sql)
            wall = (time.perf_counter() - start) * 1000.0
            report.add_row(
                label, radius, result.stats.rows_examined, result.scalar(),
                round(result.stats.rows_examined / n_objects, 4),
                round(wall, 2),
            )
        db12.use_spatial_index = True

    for depth in depths:
        db = make_db(depth)
        sql = "SELECT count(*) FROM objects o WHERE AREA(185.0, -0.5, 300.0)"
        start = time.perf_counter()
        result = db.execute(sql)
        wall = (time.perf_counter() - start) * 1000.0
        report.add_row(
            f"depth {depth}", 300.0, result.stats.rows_examined,
            result.scalar(),
            round(result.stats.rows_examined / n_objects, 4),
            round(wall, 2),
        )
    report.note(
        "Deeper meshes tighten the cover (fewer rows examined) until "
        "cover-computation overhead dominates."
    )
    return report


# -- E9: performance queries warm the cache ------------------------------------------


def run_e9_cache_warming(n_bodies: int = 2500) -> ExperimentReport:
    """Physical reads during the chain, cold cache vs count-star-warmed."""
    fed = fresh_federation(n_bodies=n_bodies, buffer_pages=2048)
    portal = fed.portal
    query = parse_query(paper_query(radius_arcsec=1200.0))
    decomposed = decompose(query, portal.catalog)
    counts = portal.planner.performance_counts(decomposed)
    plan = portal.planner.build_plan(decomposed, counts)

    report = ExperimentReport(
        exp_id="E9",
        title="Count-star performance queries warm the buffer cache",
        source="Section 5.3 ('This will often warm the database cache on "
        "each SkyNode with index pages that satisfy the main cross match "
        "query')",
        headers=[
            "scenario", "archive", "physical reads", "logical reads",
            "hit ratio",
        ],
    )

    def run_chain_collect(scenario: str, warm: bool) -> None:
        for node in fed.nodes.values():
            node.db.buffer.clear()
            node.db.buffer.reset_stats()
        if warm:
            portal.planner.performance_counts(decomposed)
            for node in fed.nodes.values():
                node.db.buffer.reset_stats()  # count only the chain's reads
        result = portal.executor.execute(plan, decomposed)
        for stats in result.node_stats:
            logical = stats["logical_reads"]
            physical = stats["physical_reads"]
            ratio = 1.0 - physical / logical if logical else 0.0
            report.add_row(
                scenario, stats["archive"], physical, logical, round(ratio, 3)
            )

    run_chain_collect("cold cache", warm=False)
    run_chain_collect("after performance queries", warm=True)
    report.note(
        "The warming pass touches exactly the pages the cross match needs "
        "(same AREA + predicates), so the chain's physical reads drop."
    )
    return report


# -- E10: order symmetry + accuracy vs ground truth -----------------------------------


def run_e10_symmetry_accuracy(
    n_bodies: int = 1500,
    thresholds: Sequence[float] = (1.0, 2.0, 3.5, 5.0),
) -> ExperimentReport:
    """Identical results under any order; precision/recall vs the truth."""
    fed = fresh_federation(n_bodies=n_bodies)
    client = fed.client()

    report = ExperimentReport(
        exp_id="E10",
        title="Order symmetry and match accuracy vs ground truth",
        source="Section 5.4 ('This XMATCH scheme is fully symmetric; the "
        "particular order of the archives considered doesn't matter.')",
        headers=["threshold", "pairs", "precision", "recall", "orders agree"],
    )

    sdss = fed.node("SDSS")
    twomass = fed.node("TWOMASS")
    area_sql = "AREA(185.0, -0.5, 1200.0)"
    in_area = {}
    for archive, node in (("SDSS", sdss), ("TWOMASS", twomass)):
        info = node.info
        result = node.db.execute(
            f"SELECT x.{info.object_id_column} FROM {info.primary_table} x "
            f"WHERE {area_sql}"
        )
        in_area[archive] = {row[0] for row in result.rows}
    truth_pairs = set()
    sdss_by_body = {
        body: oid
        for oid, body in fed.truth["SDSS"].items()
        if oid in in_area["SDSS"]
    }
    for t_oid, body in fed.truth["TWOMASS"].items():
        if t_oid in in_area["TWOMASS"] and body in sdss_by_body:
            truth_pairs.add((sdss_by_body[body], t_oid))

    for threshold in thresholds:
        sql = (
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            f"WHERE {area_sql} AND XMATCH(O, T) < {threshold}"
        )
        results = {}
        for strategy in OrderingStrategy:
            res = client.submit(sql, strategy=strategy.value)
            results[strategy] = sorted(res.rows)
        agree = len({tuple(map(tuple, rows)) for rows in results.values()}) == 1
        pairs = {tuple(row) for row in results[OrderingStrategy.COUNT_DESC]}
        true_positives = len(pairs & truth_pairs)
        precision = true_positives / len(pairs) if pairs else 1.0
        recall = true_positives / len(truth_pairs) if truth_pairs else 1.0
        report.add_row(
            threshold, len(pairs), round(precision, 4), round(recall, 4), agree
        )
    report.note(
        f"Ground truth: {len(truth_pairs)} body pairs observed by both "
        "surveys inside the AREA. Recall grows with the threshold; "
        "precision stays high until the threshold admits chance alignments."
    )
    return report


# -- E12: ablation — the candidate search radius ---------------------------------------


def run_e12_radius_ablation(
    n_bodies: int = 800, threshold: float = 3.5
) -> ExperimentReport:
    """How the Section 5.4 search radius choice trades work for recall.

    The paper retrieves "all objects that are close to the current best
    position" without pinning down 'close'. This reproduction uses the
    adaptive bound ``threshold * (sigma_new + 1/sqrt(a))``; the ablation
    compares it against a fixed worst-case radius (safe but wasteful) and
    an overly tight one (cheap but lossy).
    """
    from repro.sphere.distance import angular_separation
    from repro.workloads.skysim import SkyField, generate_bodies
    from repro.sphere.random import perturb_gaussian
    from repro.xmatch.tuples import LocalObject
    from repro.xmatch.stream import in_memory_search, match_step, seed_tuples
    import random as _random

    rng = _random.Random(4)
    # A crowded field: 3 archives over a small patch so loose radii pick up
    # many chance neighbours at the last hop.
    field = SkyField(185.0, -0.5, 300.0)
    bodies = generate_bodies(field, n_bodies, seed=4)
    sigmas = {"A": arcsec_to_rad(0.1), "B": arcsec_to_rad(0.3),
              "C": arcsec_to_rad(1.0)}
    objects = {
        alias: [
            LocalObject(i, perturb_gaussian(rng, b.position, sigma))
            for i, b in enumerate(bodies)
        ]
        for alias, sigma in sigmas.items()
    }
    # First two hops always use the adaptive rule; the ablation is at hop 3.
    pairs = match_step(
        seed_tuples("A", objects["A"], sigmas["A"]),
        "B",
        in_memory_search(objects["B"]),
        sigmas["B"],
        threshold,
    )

    sigma_c = sigmas["C"]

    def run_with_radius(radius_fn) -> Tuple[int, int]:
        candidates = 0
        matches = 0
        for partial in pairs:
            center = partial.acc.best_position()
            radius = radius_fn(partial)
            for obj in objects["C"]:
                if angular_separation(center, obj.position) > radius:
                    continue
                candidates += 1
                if partial.acc.with_observation(
                    obj.position, sigma_c
                ).chi2() <= threshold * threshold:
                    matches += 1
        return candidates, matches

    adaptive = run_with_radius(
        lambda p: p.acc.search_radius(sigma_c, threshold)
    )
    sum_of_sigmas = sum(sigmas.values())
    fixed_worst = run_with_radius(lambda p: threshold * sum_of_sigmas)
    too_tight = run_with_radius(lambda p: threshold * sigma_c * 0.5)

    report = ExperimentReport(
        exp_id="E12",
        title="Ablation: candidate search radius at the third archive",
        source="Section 5.4 (range search around the current best position)",
        headers=["radius rule", "candidates tested", "matches",
                 "recall vs adaptive"],
    )
    report.add_row(
        "adaptive t*(sigma_c+1/sqrt(a))", adaptive[0], adaptive[1], 1.0
    )
    report.add_row(
        "fixed worst-case t*sum(sigma)", fixed_worst[0], fixed_worst[1],
        round(fixed_worst[1] / adaptive[1], 4) if adaptive[1] else 1.0,
    )
    report.add_row(
        "tight t*sigma_c/2", too_tight[0], too_tight[1],
        round(too_tight[1] / adaptive[1], 4) if adaptive[1] else 1.0,
    )
    report.note(
        "The adaptive radius keeps full recall with fewer candidate tests "
        "than the fixed worst-case rule; halving it loses true matches."
    )
    return report


# -- E13: ablation — asynchronous performance queries -----------------------------------


def run_e13_async_dispatch(n_bodies: int = 800) -> ExperimentReport:
    """Parallel vs sequential count-star probes over uneven links.

    Section 5.3: performance queries "are passed as asynchronous SOAP
    messages". With archives behind links of very different latency, the
    asynchronous makespan is the slowest round trip instead of the sum.
    """
    from repro.portal.decompose import decompose

    fed = fresh_federation(n_bodies=n_bodies)
    portal = fed.portal
    # Uneven Internet: FIRST is far away.
    portal_host = portal.hostname
    latencies = {"SDSS": 0.02, "TWOMASS": 0.08, "FIRST": 0.3}
    for archive, latency in latencies.items():
        fed.network.set_link(
            portal_host, fed.node(archive).hostname, latency_s=latency
        )
    decomposed = decompose(
        parse_query(paper_query(radius_arcsec=900.0)), portal.catalog
    )

    def elapsed_sequential() -> float:
        start = fed.network.clock.now
        with fed.network.phase("performance-query"):
            for alias in decomposed.mandatory_aliases:
                subquery = decomposed.subqueries[alias]
                record = portal.catalog.node(subquery.archive)
                proxy = portal.proxy(record.services["query"])
                proxy.call("ExecuteQuery", sql=subquery.perf_sql)
        return fed.network.clock.now - start

    def elapsed_parallel() -> float:
        start = fed.network.clock.now
        portal.planner.performance_counts(decomposed)
        return fed.network.clock.now - start

    sequential = elapsed_sequential()
    parallel = elapsed_parallel()
    report = ExperimentReport(
        exp_id="E13",
        title="Ablation: asynchronous vs sequential performance queries",
        source="Section 5.3 ('passed as asynchronous SOAP messages')",
        headers=["dispatch", "elapsed sim seconds", "speedup"],
    )
    report.add_row("sequential", round(sequential, 4), 1.0)
    report.add_row(
        "asynchronous (paper)", round(parallel, 4),
        round(sequential / parallel, 2) if parallel else None,
    )
    report.note(
        f"Per-archive link latencies: {latencies}; asynchronous dispatch "
        "hides everything but the slowest archive's round trip."
    )
    return report


# -- E14: extension — byte-calibrated ordering vs count-star ---------------------------


def run_e14_byte_ordering(n_bodies: int = 1500) -> ExperimentReport:
    """Count-star ordering vs black-box byte calibration (Du92/Zhu96 idea).

    Count star estimates rows, but transmission cost is bytes: a query
    that ships five SDSS flux columns plus a type string per tuple but
    only one TWOMASS column makes SDSS rows ~4x wider. When the wide
    archive also has the *smaller* count, the paper's ordering seeds the
    chain with wide rows that then travel every hop; ordering by
    calibrated count x bytes-per-row keeps the wide rows near the front
    of the list (fewest hops).
    """
    fed = fresh_federation(n_bodies=n_bodies)
    client = fed.client()
    # O has the GALAXY filter (count ~0.66x) but contributes 6 wide attrs;
    # T has the larger count but a single attribute.
    sql = (
        "SELECT O.object_id, O.type, O.u_flux, O.g_flux, O.r_flux, "
        "O.i_flux, O.z_flux, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 1200.0) AND XMATCH(O, T) < 3.5 "
        "AND O.type = GALAXY"
    )
    report = ExperimentReport(
        exp_id="E14",
        title="Extension: byte-calibrated ordering vs count-star ordering",
        source="Section 5.3 black-box cost estimation ([Du92], [Zhu96]); "
        "count star measures rows, transmission cost is bytes",
        headers=[
            "ordering", "plan list", "chain bytes", "calibration bytes",
            "rows",
        ],
    )
    reference_rows = None
    for strategy in ("count_desc", "bytes_desc"):
        fed.network.metrics.reset()
        result = client.submit(sql, strategy=strategy)
        metrics = fed.network.metrics
        plan_list = " -> ".join(
            step["alias"] for step in (result.plan or {}).get("steps", [])
        )
        report.add_row(
            strategy,
            plan_list,
            metrics.total_bytes(phase="crossmatch-chain"),
            metrics.total_bytes(phase="calibration"),
            len(result),
        )
        if reference_rows is None:
            reference_rows = sorted(result.rows)
        elif sorted(result.rows) != reference_rows:
            report.note("RESULT MISMATCH between orderings!")
    report.note(
        "Identical results; the byte-calibrated plan places the wide-row "
        "archive first on the list so its attributes travel the fewest "
        "hops, at the price of a small calibration probe per archive."
    )
    return report


# -- E11: scalability with federation size --------------------------------------------


def run_e11_scalability(
    node_counts: Sequence[int] = (2, 3, 4, 5), n_bodies: int = 1000
) -> ExperimentReport:
    """Chain cost and tuple attrition as archives are added."""
    report = ExperimentReport(
        exp_id="E11",
        title="Scaling the chain: 2-5 federated archives",
        source="Section 2 (the federation must scale to many archives) / "
        "Section 5.3 cost model",
        headers=[
            "archives", "chain bytes", "chain msgs", "sim seconds",
            "tuples per hop", "final rows",
        ],
    )
    for n_nodes in node_counts:
        surveys = [
            SurveySpec(
                archive=f"SURV{i}",
                sigma_arcsec=0.1 + 0.2 * i,
                detection_rate=0.9,
                primary_table="objects",
                bands=("i",),
                has_type=False,
            )
            for i in range(n_nodes)
        ]
        fed = build_federation(
            FederationConfig(
                surveys=surveys,
                n_bodies=n_bodies,
                seed=99,
                sky_field=SkyField(185.0, -0.5, 1800.0),
            )
        )
        aliases = [f"S{i}" for i in range(n_nodes)]
        froms = ", ".join(
            f"SURV{i}:objects S{i}" for i in range(n_nodes)
        )
        sql = (
            f"SELECT {aliases[0]}.object_id FROM {froms} "
            f"WHERE AREA(185.0, -0.5, 900.0) AND "
            f"XMATCH({', '.join(aliases)}) < 3.5"
        )
        fed.network.metrics.reset()
        result = fed.client().submit(sql)
        metrics = fed.network.metrics
        hops = " -> ".join(
            str(stats["tuples_out"]) for stats in result.node_stats
        )
        report.add_row(
            n_nodes,
            metrics.total_bytes(phase="crossmatch-chain"),
            metrics.message_count(phase="crossmatch-chain"),
            round(metrics.simulated_seconds, 3),
            hops,
            len(result),
        )
    report.note(
        "Each added archive adds one hop; surviving tuples shrink "
        "monotonically along the chain, so per-hop payloads stay bounded."
    )
    return report


# -- E15: extension — fault injection, retries, graceful degradation ---------------


def run_e15_fault_recovery(n_bodies: int = 600) -> ExperimentReport:
    """Retry overhead at zero faults; completion under seeded drop rates.

    Autonomous archives fail: the resilient federation (retry policy +
    health probes + chain re-planning) must cost ~nothing when the network
    is clean, survive transient request drops with *identical* rows, and
    degrade gracefully (not raise) when an archive is truly gone.
    """
    from repro.services.retry import RetryPolicy
    from repro.transport.faults import FaultPlan

    policy = RetryPolicy(
        max_attempts=5, timeout_s=8.0, base_backoff_s=0.2,
        max_backoff_s=2.0, seed=15,
    )
    sql = paper_query(radius_arcsec=900.0)

    def run_arm(scenario, *, retry_policy=None, health_probes=False,
                fault_plan=None, kill=None, query=sql):
        fed = fresh_federation(
            n_bodies=n_bodies, seed=15,
            retry_policy=retry_policy, health_probes=health_probes,
            fault_plan=fault_plan,
        )
        if kill is not None:
            fed.network.fail_host(fed.node(kill).hostname)
        fed.network.metrics.reset()
        start = fed.network.clock.now
        result = fed.client().submit(query)
        elapsed = fed.network.clock.now - start
        metrics = fed.network.metrics
        return {
            "scenario": scenario,
            "rows": sorted(result.rows),
            "degraded": result.degraded,
            "warnings": list(result.warnings),
            "elapsed": elapsed,
            "retries": metrics.retries,
            "timeouts": metrics.timeouts,
            "faults": metrics.fault_count(),
        }

    arms = [run_arm("single-shot (seed)")]
    arms.append(
        run_arm("resilient, 0% faults", retry_policy=policy,
                health_probes=True)
    )
    # Per-rate plan seeds chosen so the (few dozen) messages of one query
    # really do see injected drops at each rate.
    for rate, plan_seed in ((0.05, 5), (0.10, 2), (0.20, 1)):
        plan = FaultPlan(seed=plan_seed).drop_requests(
            rate=rate, label="drops"
        )
        arms.append(
            run_arm(f"resilient, {rate:.0%} request drops",
                    retry_policy=policy, health_probes=True,
                    fault_plan=plan)
        )
    arms.append(
        run_arm("resilient, drop-out archive partitioned",
                retry_policy=policy, health_probes=True, kill="FIRST",
                query=paper_query(radius_arcsec=900.0, dropout=True))
    )

    baseline = arms[0]
    report = ExperimentReport(
        exp_id="E15",
        title="Extension: fault injection, retries, graceful degradation",
        source="Section 2 (autonomous 'federation of archives'); extension",
        headers=["scenario", "completed", "rows", "identical", "retries",
                 "timeouts", "faults injected", "sim seconds"],
    )
    for arm in arms:
        degraded = arm["degraded"]
        report.add_row(
            arm["scenario"],
            "degraded" if degraded else "yes",
            len(arm["rows"]),
            ("n/a (partial)" if degraded
             else "yes" if arm["rows"] == baseline["rows"] else "NO"),
            arm["retries"],
            arm["timeouts"],
            arm["faults"],
            round(arm["elapsed"], 3),
        )
    overhead = arms[1]["elapsed"] / baseline["elapsed"] - 1.0
    report.note(
        f"Resilience overhead at 0% faults: {overhead:+.1%} simulated "
        "elapsed time (health probes ride one parallel round trip; "
        "retries and timeouts cost nothing until a fault fires)."
    )
    degraded_arm = arms[-1]
    if degraded_arm["warnings"]:
        report.note(
            "Partitioned drop-out archive: " + degraded_arm["warnings"][0]
        )
    report.note(
        "Fault injection is seeded and replays identically; every retry, "
        "timeout and injected fault above is visible in NetworkMetrics."
    )
    return report


# -- E16: extension — the vectorized cross-match kernel vs the scalar loop ----------


def _e16_federation(n_nodes: int, n_bodies: int, kernel: str):
    """The E11 scenario's federation, with a selectable cross-match kernel."""
    surveys = [
        SurveySpec(
            archive=f"SURV{i}",
            sigma_arcsec=0.1 + 0.2 * i,
            detection_rate=0.9,
            primary_table="objects",
            bands=("i",),
            has_type=False,
        )
        for i in range(n_nodes)
    ]
    return build_federation(
        FederationConfig(
            surveys=surveys,
            n_bodies=n_bodies,
            seed=99,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            xmatch_kernel=kernel,
        )
    )


def run_e16_kernel_speedup(
    node_counts: Sequence[int] = (3, 5),
    n_bodies: int = 1500,
    repeats: int = 3,
) -> ExperimentReport:
    """Wall-clock of both kernels on the E11 scalability scenario.

    The scalar per-tuple loop was the original engine (and remains the
    testing oracle); the vectorized kernel evaluates the same recurrence
    set-at-a-time with numpy and batches the HTM covers of all search
    caps. The two must differ in wall-clock only: identical match sets,
    identical per-node stats, byte-for-byte identical wire traffic.
    """
    report = ExperimentReport(
        exp_id="E16",
        title="Vectorized numpy cross-match kernel vs scalar reference",
        source="Section 5.4 cross-match recurrence, evaluated set-at-a-time "
        "(the bugfix making scipy an optional extra)",
        headers=[
            "archives", "bodies", "scalar s", "vectorized s", "speedup",
            "rows", "same wire bytes", "same node stats",
        ],
    )
    for n_nodes in node_counts:
        froms = ", ".join(f"SURV{i}:objects S{i}" for i in range(n_nodes))
        aliases = ", ".join(f"S{i}" for i in range(n_nodes))
        sql = (
            f"SELECT S0.object_id FROM {froms} "
            f"WHERE AREA(185.0, -0.5, 900.0) AND XMATCH({aliases}) < 3.5"
        )
        arms: Dict[str, Dict[str, Any]] = {}
        for kernel in ("scalar", "vectorized"):
            fed = _e16_federation(n_nodes, n_bodies, kernel)
            client = fed.client()
            best = float("inf")
            result = None
            for _ in range(repeats):
                fed.network.metrics.reset()
                started = time.perf_counter()
                result = client.submit(sql)
                best = min(best, time.perf_counter() - started)
            assert result is not None
            arms[kernel] = {
                "elapsed": best,
                "rows": sorted(result.rows),
                "bytes": fed.network.metrics.bytes_by_phase(),
                "node_stats": result.node_stats,
            }
        scalar, vectorized = arms["scalar"], arms["vectorized"]
        assert vectorized["rows"] == scalar["rows"], "kernel changed matches!"
        report.add_row(
            n_nodes,
            n_bodies,
            round(scalar["elapsed"], 3),
            round(vectorized["elapsed"], 3),
            round(scalar["elapsed"] / vectorized["elapsed"], 2),
            len(vectorized["rows"]),
            "yes" if vectorized["bytes"] == scalar["bytes"] else "NO",
            "yes" if vectorized["node_stats"] == scalar["node_stats"] else "NO",
        )
    report.note(
        "Same matches, same per-node cost counters, byte-identical SOAP "
        "traffic: the kernels differ only in wall-clock. The vectorized "
        "engine wins on three axes: batched HTM cap covers (one "
        "level-synchronous quad-tree walk for all tuples), searchsorted "
        "probes over columnar index arrays, and one broadcasted "
        "chi-squared pass per chain step."
    )
    report.note(
        "The gap widens with archives and bodies — the scalar loop pays "
        "per (tuple, candidate) pair in Python, the vectorized kernel "
        "per chain step. Isolated from SOAP/simulation overhead (see "
        "docs/PERFORMANCE.md) the kernel itself is 40-50x faster."
    )
    return report


# -- E17: pipelined chain execution + columnar wire format --------------------------


def _e17_federation(
    n_nodes: int, n_bodies: int, bandwidth_bps: float
):
    """The E11 scenario's federation with a configurable link bandwidth."""
    surveys = [
        SurveySpec(
            archive=f"SURV{i}",
            sigma_arcsec=0.1 + 0.2 * i,
            detection_rate=0.9,
            primary_table="objects",
            bands=("i",),
            has_type=False,
        )
        for i in range(n_nodes)
    ]
    return build_federation(
        FederationConfig(
            surveys=surveys,
            n_bodies=n_bodies,
            seed=99,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            default_bandwidth_bps=bandwidth_bps,
        )
    )


def run_e17_pipelined_chain(
    node_counts: Sequence[int] = (3, 5),
    body_counts: Sequence[int] = (1000, 8000),
    batch_sizes: Sequence[int] = (50, 200, 800),
    bandwidths: Sequence[float] = (250_000.0, 1_000_000.0, 4_000_000.0),
) -> ExperimentReport:
    """Pipelined streaming chain vs store-and-forward, on the E11 scenario.

    Both modes must return byte-identical rows; they differ in *when* the
    clock is charged. Store-and-forward runs one ``PerformXMatch``
    traversal whose every hop waits for the complete neighbour result.
    The pipelined mode opens a stream down the chain once, then pulls all
    batches concurrently — each batch's whole traversal is one branch of
    a ``parallel()`` block, so the chain is charged open-cascade plus the
    *slowest batch* instead of the serialized total. The batches also ride
    the compact columnar ``colset`` encoding instead of row-major XML.
    """
    report = ExperimentReport(
        exp_id="E17",
        title="Pipelined streaming chain + columnar wire format",
        source="Section 5.3 cost model (transmission overlapped with "
        "computation) / Section 6 (large SOAP messages)",
        headers=[
            "archives", "bodies", "batch", "bw B/s", "store-fwd s",
            "pipelined s", "speedup", "sf chain B", "pl chain B",
            "byte ratio", "identical rows",
        ],
    )

    def arm(fed, sql: str, mode: str, batch: int) -> Dict[str, Any]:
        fed.portal.chain_mode = mode
        fed.portal.stream_batch_size = batch
        fed.network.metrics.reset()
        started = fed.network.clock.now
        result = fed.client().submit(sql)
        makespan = fed.network.clock.now - started
        m = fed.network.metrics
        return {
            "rows": list(result.rows),
            "columns": list(result.columns),
            "matched": result.matched_tuples,
            "makespan": makespan,
            "chain_bytes": (
                m.total_bytes(phase="crossmatch-chain")
                + m.total_bytes(phase="batch-transfer")
                + m.total_bytes(phase="chunk-transfer")
            ),
        }

    def compare(fed, sql: str, label_args, batch: int) -> None:
        sf = arm(fed, sql, "store-forward", batch)
        pl = arm(fed, sql, "pipelined", batch)
        identical = (
            sf["rows"] == pl["rows"]
            and sf["columns"] == pl["columns"]
            and sf["matched"] == pl["matched"]
        )
        report.add_row(
            *label_args,
            round(sf["makespan"], 3),
            round(pl["makespan"], 3),
            round(sf["makespan"] / pl["makespan"], 2),
            sf["chain_bytes"],
            pl["chain_bytes"],
            round(sf["chain_bytes"] / max(1, pl["chain_bytes"]), 2),
            "yes" if identical else "NO",
        )
        if not identical:
            report.note(f"RESULT MISMATCH at {label_args}!")

    def sql_for(n_nodes: int) -> str:
        froms = ", ".join(f"SURV{i}:objects S{i}" for i in range(n_nodes))
        aliases = ", ".join(f"S{i}" for i in range(n_nodes))
        return (
            f"SELECT S0.object_id FROM {froms} "
            f"WHERE AREA(185.0, -0.5, 900.0) AND XMATCH({aliases}) < 3.5"
        )

    default_bw = 1_000_000.0
    default_batch = 200
    # Archives x bodies at the default link.
    for n_nodes in node_counts:
        for n_bodies in body_counts:
            fed = _e17_federation(n_nodes, n_bodies, default_bw)
            compare(
                fed, sql_for(n_nodes),
                (n_nodes, n_bodies, default_batch, int(default_bw)),
                default_batch,
            )
    # Batch-size sweep at the largest default-link scenario.
    n_nodes, n_bodies = node_counts[0], body_counts[-1]
    fed = _e17_federation(n_nodes, n_bodies, default_bw)
    for batch in batch_sizes:
        if batch == default_batch:
            continue  # already measured above
        compare(
            fed, sql_for(n_nodes),
            (n_nodes, n_bodies, batch, int(default_bw)), batch,
        )
    # Bandwidth sweep at the same scenario.
    for bandwidth in bandwidths:
        if bandwidth == default_bw:
            continue
        fed = _e17_federation(n_nodes, n_bodies, bandwidth)
        compare(
            fed, sql_for(n_nodes),
            (n_nodes, n_bodies, default_batch, int(bandwidth)),
            default_batch,
        )
    report.note(
        "Identical rows in identical order in every arm: the pipelined "
        "stream partitions only the seed tuples, so each hop sees the same "
        "tuple set in the same order, batch by batch."
    )
    report.note(
        "Pipelining pays the chain's latency twice (open cascade + the "
        "slowest batch) but charges transfer and per-hop compute at batch "
        "granularity, overlapped. It loses when latency dominates (small "
        "payloads, few batches) and wins increasingly as payload bytes per "
        "link dollar grow — more bodies, slower links, or both."
    )
    report.note(
        "The byte ratio > 1 is the columnar colset encoding: column-major "
        "arrays with delta-coded ints and dictionary-coded strings replace "
        "per-cell XML elements on every streamed batch."
    )
    return report


# -- E18: extension — replica failover: resume vs full-restart vs degrade -----------


def run_e18_failover_recovery(n_bodies: int = 800) -> ExperimentReport:
    """Mid-chain crash recovery: checkpoint/resume vs full-restart vs degrade.

    A replica-backed federation answers the paper query while the first
    chain hop's host is crashed mid-execution. Three recovery strategies
    compete under the *same* injected crash: checkpoint/stream resume (the
    shipped path — downstream hops serve their cached payloads, so only
    the failed hop's bytes travel again), full restart (failover to the
    replica but every hop recomputes and re-transfers), and degrade (no
    replicas provisioned at all). Wasted bytes = chain bytes beyond the
    fault-free oracle's; recovery makespan = simulated seconds beyond the
    oracle's elapsed time.
    """
    from repro.bench.scenarios import fresh_federation
    from repro.services.retry import RetryPolicy
    from repro.transport.faults import FaultPlan

    sql = paper_query(radius_arcsec=900.0)

    def build(mode: str, replicas: int = 1):
        fed = fresh_federation(
            n_bodies=n_bodies,
            seed=18,
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
                max_backoff_s=2.0, seed=18,
            ),
            replicas=replicas,
            chain_mode=mode,
        )
        if mode == "pipelined":
            # Several small batches under single-batch flow control: the
            # stream acknowledges progress batch by batch, so a mid-pull
            # crash has a meaningful high-water mark to resume from.
            fed.portal.stream_batch_size = 8
            fed.portal.stream_pull_window = 1
        return fed

    def chain_bytes(metrics) -> int:
        return (
            metrics.total_bytes(phase="crossmatch-chain")
            + metrics.total_bytes(phase="batch-transfer")
            + metrics.total_bytes(phase="chunk-transfer")
        )

    def run(fed, crash_host=None, crash_at=None):
        if crash_host is not None:
            fed.network.set_fault_plan(
                FaultPlan().crash(crash_host, at_s=crash_at)
            )
        fed.network.metrics.reset()
        start = fed.network.clock.now
        result = fed.client().submit(sql)
        pulls = [
            m.sim_time for m in fed.network.metrics.messages
            if m.phase == "batch-transfer"
        ]
        return {
            "rows": list(result.rows),
            "elapsed": fed.network.clock.now - start,
            "bytes": chain_bytes(fed.network.metrics),
            "failovers": result.failovers,
            "degraded": result.degraded,
            "victim": (
                result.plan["steps"][0]["url"].split("/")[2]
                if result.plan else None
            ),
            "start": start,
            "pull_window": (min(pulls), max(pulls)) if pulls else None,
        }

    def late_crash_at(baseline):
        """A crash instant that lands while completed work exists to save.

        Store-forward: 60% into the submit window, while the portal
        awaits the chain and downstream hops have checkpointed.
        Pipelined: 70% into the batch-pull phase, after some batches are
        acknowledged but before the stream drains.
        """
        if baseline["pull_window"] is not None:
            lo, hi = baseline["pull_window"]
            return lo + 0.7 * (hi - lo)
        return baseline["start"] + 0.6 * baseline["elapsed"]

    report = ExperimentReport(
        exp_id="E18",
        title="Replica failover: checkpoint/resume vs restart vs degrade",
        source="Section 2 (autonomous archives) / Section 5.3 chain "
        "execution; extension",
        headers=[
            "mode", "strategy", "completed", "rows", "identical",
            "failovers", "chain B", "wasted B", "recovery s",
        ],
    )
    for mode in ("store-forward", "pipelined"):
        oracle = run(build(mode))
        window = oracle["elapsed"]
        victim = oracle["victim"]

        def arm(label, fed, *, crash_at, baseline=oracle):
            outcome = run(fed, crash_host=victim, crash_at=crash_at)
            report.add_row(
                mode,
                label,
                "degraded" if outcome["degraded"] else "yes",
                len(outcome["rows"]),
                ("n/a (partial)" if outcome["degraded"]
                 else "yes" if outcome["rows"] == baseline["rows"] else "NO"),
                outcome["failovers"],
                outcome["bytes"],
                outcome["bytes"] - baseline["bytes"],
                round(outcome["elapsed"] - baseline["elapsed"], 3),
            )
            return outcome

        report.add_row(
            mode, "fault-free oracle", "yes", len(oracle["rows"]), "yes",
            0, oracle["bytes"], 0, 0.0,
        )
        late = late_crash_at(oracle)
        early = oracle["start"] + 0.15 * window
        arm("resume (late crash)", build(mode), crash_at=late)
        restart_fed = build(mode)
        restart_fed.portal.checkpoint_resume = False
        arm("full restart (late crash)", restart_fed, crash_at=late)
        arm("resume (early crash)", build(mode), crash_at=early)
        early_restart = build(mode)
        early_restart.portal.checkpoint_resume = False
        arm("full restart (early crash)", early_restart, crash_at=early)

        # Degrade: no replicas at all. Its own oracle twin (a replica-free
        # build has a different deterministic timeline, so the crash
        # instant must be measured against it).
        degrade_oracle = run(build(mode, replicas=0))
        report.add_row(
            mode, "degrade oracle (no replicas)", "yes",
            len(degrade_oracle["rows"]), "yes", 0, degrade_oracle["bytes"],
            0, 0.0,
        )
        fed = build(mode, replicas=0)
        fed.network.set_fault_plan(
            FaultPlan().crash(
                degrade_oracle["victim"], at_s=late_crash_at(degrade_oracle)
            )
        )
        fed.network.metrics.reset()
        start = fed.network.clock.now
        result = fed.client().submit(sql)
        report.add_row(
            mode, "degrade (late crash)",
            "degraded" if result.degraded else "yes",
            len(result.rows),
            "n/a (partial)" if result.degraded else
            ("yes" if list(result.rows) == degrade_oracle["rows"] else "NO"),
            result.failovers,
            chain_bytes(fed.network.metrics),
            chain_bytes(fed.network.metrics) - degrade_oracle["bytes"],
            round(
                (fed.network.clock.now - start) - degrade_oracle["elapsed"], 3
            ),
        )
    report.note(
        "Resume's win is structural: the crashed hop sits at the head of "
        "the chain, so every downstream hop had already checkpointed its "
        "completed payload (store-forward) or acknowledged batches "
        "(pipelined) when the crash fired. The failed-over chain re-spends "
        "only the replacement hop's compute and its two adjacent "
        "transfers; full restart re-spends the whole chain."
    )
    report.note(
        "Losing regimes, honestly: a crash early in the chain (the "
        "early-crash arms, 15% into the submit window) "
        "leaves little or nothing checkpointed, so resume converges to "
        "full restart (and when the crash lands before the chain starts, "
        "plan-time failover makes the two byte-identical). A crash of the "
        "chain's *last* hop similarly finds no completed downstream work "
        "to reuse. Checkpoints also hold node memory for their TTL "
        "(600 simulated seconds) — a cost the restart strategy never pays."
    )
    report.note(
        "The pipelined arms run 8-tuple batches under single-batch flow "
        "control (stream_pull_window=1): progress is acknowledged batch "
        "by batch, so the high-water mark means something. With unbounded "
        "overlap (the latency-optimal default) every batch is in flight "
        "at the crash instant and they fail as one — another regime where "
        "resume buys nothing over restart."
    )
    report.note(
        "Degrade is the cheapest recovery on every axis except the one "
        "that matters: with the crashed archive mandatory and no replica, "
        "the answer is empty. Failover turns the same crash into a "
        "complete result for the price of the re-spent hop."
    )
    return report


# -- E19: extension — live ingest under load: snapshot queries + replica lag --------


def run_e19_ingest_under_load(
    n_bodies: int = 800,
    n_epochs: int = 3,
    rows_per_epoch: int = 60,
) -> ExperimentReport:
    """Live ingest under query load vs the quiescent federation.

    A replica-backed federation answers the paper query between epoch
    commits: both SDSS and TWOMASS ingest the same fresh bodies, so each
    epoch genuinely grows the match set. Measured per epoch: query
    latency (simulated seconds) against the quiescent baseline, the
    ingest commit makespan, the replica catch-up lag (how long the
    mirror's Commit delivery trails the primary's inside the 2PC
    decision), and the staged wire bytes. A final arm replays the first
    query pinned at its epochs — the repeatable read — and a
    replica-free build prices the fan-out.
    """
    from repro.services.retry import RetryPolicy
    from repro.workloads.skysim import generate_bodies, observe_survey

    # Two-archive cross-match over the two surveys that ingest below —
    # every committed epoch can genuinely grow the match set. (The
    # 3-archive paper query would gate new matches on FIRST, which does
    # not observe the fresh bodies.)
    sql = (
        "SELECT O.object_id, O.ra, T.obj_id "
        "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T) < 3.5"
    )

    def build(replicas: int = 1):
        return fresh_federation(
            n_bodies=n_bodies,
            seed=19,
            retry_policy=RetryPolicy(
                max_attempts=3, timeout_s=5.0, base_backoff_s=0.2,
                max_backoff_s=2.0, seed=19,
            ),
            replicas=replicas,
            ingest=True,
        )

    def observation(fed, archive, offset):
        config = fed.config
        survey = next(s for s in config.surveys if s.archive == archive)
        obs = observe_survey(
            survey,
            generate_bodies(
                config.sky_field, rows_per_epoch, config.seed + offset
            ),
            config.seed + offset,
        )
        columns = list(obs.rows[0].keys())
        rows = [tuple(row[c] for c in columns) for row in obs.rows]
        return survey.primary_table, columns, rows

    def timed_query(fed, **kwargs):
        start = fed.network.clock.now
        if kwargs:
            result = fed.portal.submit(sql, **kwargs)
        else:
            result = fed.client().submit(sql)
        return result, fed.network.clock.now - start

    def ingest_epoch(fed, offset):
        """Commit one epoch into SDSS+TWOMASS; returns (s, lag_s, bytes)."""
        metrics = fed.network.metrics
        ingest_bytes = (
            metrics.total_bytes(phase="ingest")
            + metrics.total_bytes(phase="transaction")
        )
        mark = len(metrics.messages)
        start = fed.network.clock.now
        lags = []
        for archive in ("SDSS", "TWOMASS"):
            table, columns, rows = observation(fed, archive, offset)
            result = fed.ingest_client(archive).ingest_rows(
                table, columns, rows
            )
            assert result.committed, result.abort_reason
        commits = [
            m.sim_time for m in metrics.messages[mark:]
            if m.kind == "request" and m.operation == "Commit"
        ]
        # Two archives committed, each delivering Commit to its primary
        # then its mirrors; the lag is how far the last delivery trails
        # the first within one archive's decision.
        if commits:
            half = len(commits) // 2
            lags = [
                max(chunk) - min(chunk)
                for chunk in (commits[:half], commits[half:])
                if chunk
            ]
        new_bytes = (
            metrics.total_bytes(phase="ingest")
            + metrics.total_bytes(phase="transaction")
            - ingest_bytes
        )
        return (
            fed.network.clock.now - start,
            max(lags) if lags else 0.0,
            new_bytes,
        )

    report = ExperimentReport(
        exp_id="E19",
        title="Live ingest under load: snapshot queries + replica catch-up",
        source="Section 6 future work (archives keep observing); extension",
        headers=[
            "arm", "epoch", "matches", "query s", "vs quiescent s",
            "ingest s", "replica lag s", "ingest B",
        ],
    )

    # Quiescent baseline: the same query on the untouched federation.
    quiet = build()
    q_result, q_elapsed = timed_query(quiet)
    report.add_row(
        "quiescent", 0, len(q_result.rows), round(q_elapsed, 3), 0.0,
        None, None, None,
    )

    # Under load: query between epoch commits.
    fed = build()
    r0, e0 = timed_query(fed)
    assert list(r0.rows) == list(q_result.rows)
    report.add_row(
        "under load", 0, len(r0.rows), round(e0, 3),
        round(e0 - q_elapsed, 3), None, None, None,
    )
    matches = [len(r0.rows)]
    for epoch in range(1, n_epochs + 1):
        ingest_s, lag_s, ingest_b = ingest_epoch(fed, 100 + epoch)
        result, elapsed = timed_query(fed)
        assert result.epochs["O"] == epoch
        matches.append(len(result.rows))
        report.add_row(
            "under load", epoch, len(result.rows), round(elapsed, 3),
            round(elapsed - q_elapsed, 3), round(ingest_s, 3),
            round(lag_s, 4), ingest_b,
        )

    # The repeatable read: the first query's answer, replayed bit for bit
    # at its pinned epochs after every ingest has landed.
    pinned, pinned_s = timed_query(fed, pin_epochs=dict(r0.epochs))
    assert sorted(pinned.rows) == sorted(r0.rows)
    report.add_row(
        "pinned replay @0", 0, len(pinned.rows), round(pinned_s, 3),
        round(pinned_s - q_elapsed, 3), None, None, None,
    )

    # Fan-out priced: the same first epoch with no replicas provisioned.
    bare = build(replicas=0)
    bare_s, _, bare_b = ingest_epoch(bare, 101)
    report.add_row(
        "no-replica ingest", 1, None, None, None,
        round(bare_s, 3), 0.0, bare_b,
    )

    report.note(
        "Query latency under load grows with the data, not the ingest "
        "machinery: each epoch adds rows inside the query area, so the "
        "chain carries more candidate tuples. The pinned replay reads the "
        "epoch-0 snapshot and stays at (or near) the quiescent latency "
        "even though the live tables have grown past it."
    )
    report.note(
        "Replica catch-up lag is the decision-delivery gap inside 2PC: "
        "the mirror commits the epoch one Commit-message transfer after "
        "the primary. Until that delivery lands, a failover read at the "
        "new epoch would fail — the lag is the price of lockstep."
    )
    report.note(
        "Losing regimes, honestly: replica fan-out roughly doubles the "
        "staged wire bytes and stretches the commit makespan vs the "
        "no-replica arm (every batch travels once per participant). "
        "Epoch GC (keep_epochs) bounds the snapshot history: a reader "
        "pinned past it gets StaleEpochError and must re-plan, and "
        "holding more epochs holds more row versions. And ingest commits "
        "serialize behind the 2PC decision — an upload burst delays its "
        "own later batches, though never a pinned reader."
    )
    assert matches == sorted(matches), "epochs must only grow the answer"
    return report


# -- E20: extension — the zone match engine vs HTM at scale -------------------------


def _e20_bodies(n: int, seed: int = 12, spread_arcsec: float = 3600.0):
    """A dense random field of true body positions."""
    from repro.sphere.coords import radec_to_vector
    from repro.sphere.random import random_in_cap

    rng = random.Random(seed)
    center = radec_to_vector(185.0, -0.5)
    return rng, [
        random_in_cap(rng, center, arcsec_to_rad(spread_arcsec))
        for _ in range(n)
    ]


def _e20_chain_spec(n: int):
    """Three in-memory archives observing the same n bodies."""
    from repro.sphere.random import perturb_gaussian
    from repro.xmatch.tuples import LocalObject

    rng, bodies = _e20_bodies(n)
    spec = []
    for alias, sigma_arcsec in (("A", 0.1), ("B", 0.3), ("C", 0.5)):
        sigma = arcsec_to_rad(sigma_arcsec)
        objects = [
            LocalObject(object_id=i, position=perturb_gaussian(rng, b, sigma))
            for i, b in enumerate(bodies)
        ]
        spec.append((alias, objects, sigma, False))
    return spec


def _e20_database(n: int, m: int):
    """One archive table of n rows plus a temp table of m incoming tuples."""
    from repro.db.engine import Database
    from repro.db.schema import Column
    from repro.db.table import SpatialSpec
    from repro.db.types import ColumnType
    from repro.skynode.xmatch_proc import register_xmatch_procedure
    from repro.sphere.coords import vector_to_radec
    from repro.sphere.random import perturb_gaussian
    from repro.xmatch.chi2 import Accumulator

    sigma = arcsec_to_rad(0.3)
    rng, bodies = _e20_bodies(n)
    db = Database("arch", page_size=64)
    register_xmatch_procedure(db)
    db.create_table(
        "objects",
        [
            Column("object_id", ColumnType.INT, nullable=False),
            Column("ra", ColumnType.FLOAT, nullable=False),
            Column("dec", ColumnType.FLOAT, nullable=False),
        ],
        spatial=SpatialSpec("ra", "dec", htm_depth=12),
    )
    rows = []
    for i, body in enumerate(bodies):
        ra, dec = vector_to_radec(perturb_gaussian(rng, body, sigma))
        rows.append((i, ra, dec))
    db.insert("objects", rows)
    temp = db.create_temp_table(
        "xm",
        [
            Column("seq", ColumnType.INT, nullable=False),
            Column("a", ColumnType.FLOAT, nullable=False),
            Column("ax", ColumnType.FLOAT, nullable=False),
            Column("ay", ColumnType.FLOAT, nullable=False),
            Column("az", ColumnType.FLOAT, nullable=False),
        ],
    )
    for seq in range(m):
        acc = Accumulator.of_observation(
            perturb_gaussian(rng, bodies[seq], sigma), sigma
        )
        temp.insert((seq, acc.a, acc.ax, acc.ay, acc.az))
    return db, temp


def _e20_federation(n_bodies: int, match_engine: str, xmatch_kernel: str):
    """The E16 scenario's federation with a selectable match engine."""
    surveys = [
        SurveySpec(
            archive=f"SURV{i}",
            sigma_arcsec=0.1 + 0.2 * i,
            detection_rate=0.9,
            primary_table="objects",
            bands=("i",),
            has_type=False,
        )
        for i in range(3)
    ]
    return build_federation(
        FederationConfig(
            surveys=surveys,
            n_bodies=n_bodies,
            seed=99,
            sky_field=SkyField(185.0, -0.5, 1800.0),
            match_engine=match_engine,
            xmatch_kernel=xmatch_kernel,
        )
    )


def run_e20_zone_engine(
    kernel_sizes: Sequence[int] = (200, 1_000, 5_000, 20_000, 100_000),
    proc_sizes: Sequence[int] = (20_000, 100_000, 300_000),
    chain_sizes: Sequence[int] = (20_000, 100_000),
    broadcast_cap: int = 20_000,
    scalar_cap: int = 5_000,
    proc_tuples: int = 5_000,
    repeats: int = 2,
) -> ExperimentReport:
    """The zone engine against HTM (and the scalar oracle) at three layers.

    ``kernel``: the in-memory chain (``run_chain``) — the zone sorted-merge
    vs the broadcast O(m*n) batch kernel vs the scalar loop, pure matcher
    cost with no database or SOAP. ``sp_xmatch``: one stored-procedure call
    on a single archive database — the zone window probe vs the batched-HTM
    cap covers, everything else identical. ``federated``: the full
    three-node SOAP chain under each ``match_engine``. Engines that are
    infeasible at a size (the broadcast kernel is quadratic; the scalar
    loop pays per pair in Python) are capped and reported as ``-`` rather
    than extrapolated.
    """
    from repro.xmatch.stream import run_chain

    report = ExperimentReport(
        exp_id="E20",
        title="Zone match engine vs HTM reference at scale",
        source="ROADMAP item 2: the successor papers' zone algorithm "
        "(Nieto-Santisteban 2005; Dobos 2012) replacing per-cap HTM probes",
        headers=[
            "scenario", "bodies", "baseline", "base s", "zone s",
            "speedup", "scalar s", "rows", "identical",
        ],
    )

    def best_of(fn):
        best = float("inf")
        value = None
        for _ in range(repeats):
            started = time.perf_counter()
            value = fn()
            best = min(best, time.perf_counter() - started)
        return best, value

    # --- layer 1: the isolated in-memory kernels -------------------------
    kernel_crossover = None
    for n in kernel_sizes:
        spec = _e20_chain_spec(n)
        zone_s, zone_result = best_of(lambda: run_chain(spec, 3.5, engine="zone"))
        zone_key = [(t.members, t.acc.a, t.acc.ax, t.acc.ay, t.acc.az)
                    for t in zone_result]
        identical = []
        base_s = None
        if n <= broadcast_cap:
            base_s, base_result = best_of(
                lambda: run_chain(spec, 3.5, engine="vectorized")
            )
            base_key = [(t.members, t.acc.a, t.acc.ax, t.acc.ay, t.acc.az)
                        for t in base_result]
            identical.append(zone_key == base_key)
            if kernel_crossover is None and zone_s < base_s:
                kernel_crossover = n
        scalar_s = None
        if n <= scalar_cap:
            scalar_s, scalar_result = best_of(
                lambda: run_chain(spec, 3.5, engine="scalar")
            )
            scalar_key = [(t.members, t.acc.a, t.acc.ax, t.acc.ay, t.acc.az)
                          for t in scalar_result]
            identical.append(zone_key == scalar_key)
        report.add_row(
            "kernel", n, "broadcast",
            round(base_s, 3) if base_s is not None else "-",
            round(zone_s, 3),
            round(base_s / zone_s, 2) if base_s is not None else "-",
            round(scalar_s, 3) if scalar_s is not None else "-",
            len(zone_result),
            # "-" when zone ran alone (every comparison engine was over
            # its feasibility cap), so absence of evidence never reads
            # as divergence.
            ("yes" if all(identical) else "NO") if identical else "-",
        )

    # --- layer 2: one sp_xmatch call on a single archive -----------------
    def proc_call(db, temp, engine, kernel="vectorized"):
        from repro.skynode.xmatch_proc import PROCEDURE_NAME

        return db.call_procedure(
            PROCEDURE_NAME, temp_table=temp.name, primary_table="objects",
            id_column="object_id", ra_column="ra", dec_column="dec",
            alias="X", sigma_arcsec=0.3, threshold=3.5, area=None,
            residual=None, attr_columns=(), kernel=kernel, engine=engine,
        )

    def proc_key(result):
        return (
            {seq: [(o.object_id, o.position) for o in matched]
             for seq, matched in result.matches.items()},
            (result.stats.tuples_in, result.stats.candidates_tested,
             result.stats.rows_examined, result.stats.matches_found),
        )

    for n in proc_sizes:
        db, temp = _e20_database(n, proc_tuples)
        htm_s, htm_result = best_of(lambda: proc_call(db, temp, "htm"))
        zone_s, zone_result = best_of(lambda: proc_call(db, temp, "zone"))
        scalar_s, scalar_result = best_of(
            lambda: proc_call(db, temp, "htm", kernel="scalar")
        )
        identical = (
            proc_key(zone_result) == proc_key(htm_result) == proc_key(scalar_result)
        )
        report.add_row(
            "sp_xmatch", n, "batched-htm",
            round(htm_s, 3), round(zone_s, 3), round(htm_s / zone_s, 2),
            round(scalar_s, 3), len(zone_result.matches),
            "yes" if identical else "NO",
        )

    # --- layer 3: the full federated SOAP chain --------------------------
    sql = (
        "SELECT S0.object_id "
        "FROM SURV0:objects S0, SURV1:objects S1, SURV2:objects S2 "
        "WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(S0, S1, S2) < 3.5"
    )

    def fed_observe(n, engine, kernel):
        fed = _e20_federation(n, engine, kernel)
        client = fed.client()
        best = float("inf")
        result = None
        for _ in range(repeats):
            fed.network.metrics.reset()
            started = time.perf_counter()
            result = client.submit(sql)
            best = min(best, time.perf_counter() - started)
        return best, (
            sorted(result.rows), result.node_stats,
            fed.network.metrics.bytes_by_phase(),
        )

    for n in chain_sizes:
        htm_s, htm_obs = fed_observe(n, "htm", "vectorized")
        zone_s, zone_obs = fed_observe(n, "zone", "vectorized")
        scalar_s = None
        identical = [zone_obs == htm_obs]
        if n <= scalar_cap * 4:
            scalar_s, scalar_obs = fed_observe(n, "htm", "scalar")
            identical.append(zone_obs == scalar_obs)
        report.add_row(
            "federated", n, "htm",
            round(htm_s, 3), round(zone_s, 3), round(htm_s / zone_s, 2),
            round(scalar_s, 3) if scalar_s is not None else "-",
            len(zone_obs[0]),
            "yes" if all(identical) else "NO",
        )

    if kernel_crossover is not None:
        report.note(
            f"Kernel crossover: the zone sorted-merge overtakes the "
            f"broadcast batch kernel at ~{kernel_crossover} bodies. Below "
            f"that, building the per-archive zone arrays and the window "
            f"trigonometry cost more than simply broadcasting the few "
            f"(tuple, candidate) pairs — the zone engine LOSES on small "
            f"batches, which is why HTM/broadcast stays the default."
        )
    report.note(
        "The broadcast kernel is O(m*n) per step and infeasible past "
        f"{broadcast_cap} bodies (the '-' cells); the zone kernel is "
        "O(m*k + n log n) and runs the same field at 100k+ bodies in "
        "seconds. On the stored-procedure path the win is the probe: "
        "per-tuple HTM cap covers walk the trixel tree in Python, while "
        "zone windows are one vectorized searchsorted batch."
    )
    report.note(
        "Federated chains dilute the kernel win behind SOAP encode/parse "
        "and simulated transfer costs — the honest losing regime of both "
        "fast engines. Every row above also re-checks the contract: "
        "identical survivors, accumulators, scan stats, and wire bytes "
        "across engines ('identical' column)."
    )
    return report


# -- E21: multi-tenant scheduler + semantic cache --------------------------------


def run_e21_scheduler_cache(
    n_bodies: int = 800,
    n_queries: int = 12,
    pool_size: int = 3,
    n_tenants: int = 3,
    max_inflight: int = 4,
    zipf_s: float = 1.1,
    ingest_rows: int = 80,
) -> ExperimentReport:
    """The portal as a multi-tenant server: scheduler + semantic cache.

    A zipf-repeated workload (a few hot AREA queries dominate, as portal
    logs show) runs through four arms on identical twin federations:
    serial uncached (the paper's one-query-at-a-time portal), the wave
    scheduler alone, scheduler + cold semantic cache, and the same
    federation re-answering the workload warm. Sim-clock latencies
    (p50/p99), makespan, and simulated wire bytes are reported per arm;
    every arm's answers are checked row-identical to the serial oracle.
    Losing regimes are measured, not hidden: a unique-query workload
    (zero repeats — the cache can only miss) and a tiny federation
    (absolute savings in the noise). A final ingest commit demonstrates
    epoch-based invalidation: the warmed cache drops its entries and the
    next query returns the new epoch's answer.
    """
    from repro.portal.scheduler import SchedulerConfig
    from repro.workloads.skysim import generate_bodies, observe_survey

    report = ExperimentReport(
        exp_id="E21",
        title="Multi-tenant scheduler + epoch-aware semantic cache",
        source="Section 3's portal-as-web-service: many concurrent "
        "clients, repeated queries, live archives (ROADMAP item 1)",
        headers=[
            "arm", "queries", "p50 s", "p99 s", "makespan s",
            "wire KB", "hits", "identical",
        ],
    )

    tenants = [f"tenant-{i}" for i in range(n_tenants)]
    jobs = zipf_workload(
        n_queries, pool_size, s=zipf_s, seed=7, tenants=tenants
    )
    sched_config = SchedulerConfig(max_inflight=max_inflight)

    def percentile(values, q):
        ordered = sorted(values)
        if not ordered:
            return 0.0
        rank = int(round(q / 100.0 * (len(ordered) - 1)))
        return ordered[max(0, min(len(ordered) - 1, rank))]

    def wire_kb(fed):
        return round(
            sum(fed.network.metrics.bytes_by_phase().values()) / 1024.0, 1
        )

    # --- arm 1: serial uncached (the oracle) -----------------------------
    oracle: Dict[str, List[Tuple]] = {}
    serial = fresh_federation(n_bodies=n_bodies)
    serial.network.metrics.reset()
    latencies = []
    t0 = serial.network.clock.now
    for job in jobs:
        q0 = serial.network.clock.now
        result = serial.portal.submit(job["sql"])
        latencies.append(serial.network.clock.now - q0)
        oracle[job["sql"]] = sorted(result.rows)
    serial_makespan = serial.network.clock.now - t0
    report.add_row(
        "serial uncached", len(jobs),
        round(percentile(latencies, 50), 3),
        round(percentile(latencies, 99), 3),
        round(serial_makespan, 3), wire_kb(serial), 0, "oracle",
    )

    def scheduled_arm(name, fed, *, hits_expected=None):
        fed.network.metrics.reset()
        t0 = fed.network.clock.now
        outcomes = fed.scheduler.run([dict(job) for job in jobs])
        makespan = fed.network.clock.now - t0
        finished = [o for o in outcomes if o.result is not None]
        identical = len(finished) == len(jobs) and all(
            sorted(o.result.rows) == oracle[o.job.sql] for o in finished
        )
        hits = sum(1 for o in finished if o.cache is not None)
        report.add_row(
            name, len(jobs),
            round(percentile([o.latency_s for o in finished], 50), 3),
            round(percentile([o.latency_s for o in finished], 99), 3),
            round(makespan, 3), wire_kb(fed), hits,
            "yes" if identical else "NO",
        )
        return makespan, hits

    # --- arm 2: scheduler alone ------------------------------------------
    sched_only = fresh_federation(n_bodies=n_bodies, scheduler=sched_config)
    sched_makespan, _ = scheduled_arm("scheduler only", sched_only)

    # --- arms 3+4: scheduler + cache, cold then warm ---------------------
    cached = fresh_federation(
        n_bodies=n_bodies, scheduler=sched_config, cache=True
    )
    cold_makespan, cold_hits = scheduled_arm("scheduler + cache (cold)", cached)
    tracer = cached.network.tracer
    if tracer is not None:
        tracer.reset()
    warm_makespan, warm_hits = scheduled_arm("scheduler + cache (warm)", cached)
    warm_traced = None
    if tracer is not None:
        warm_traced = (
            sum(t.total_wire_bytes() for t in tracer.traces())
            + tracer.untraced_bytes
        )

    # --- losing regime 1: unique-query workload --------------------------
    # Every query distinct, radii strictly ascending: no exact repeat can
    # hit, and no later circle is contained in an earlier cached one, so
    # the cache can only miss.
    unique_step = 900.0 / n_queries
    unique_jobs = [
        {
            "sql": paper_query(600.0 + i * unique_step),
            "tenant": tenants[i % n_tenants],
        }
        for i in range(n_queries)
    ]
    unique_oracle = fresh_federation(n_bodies=n_bodies)
    answers = {}
    for job in unique_jobs:
        answers[job["sql"]] = sorted(
            unique_oracle.portal.submit(job["sql"]).rows
        )
    unique_fed = fresh_federation(
        n_bodies=n_bodies, scheduler=sched_config, cache=True
    )
    unique_fed.network.metrics.reset()
    t0 = unique_fed.network.clock.now
    unique_outcomes = unique_fed.scheduler.run(
        [dict(job) for job in unique_jobs]
    )
    unique_makespan = unique_fed.network.clock.now - t0
    unique_done = [o for o in unique_outcomes if o.result is not None]
    unique_identical = all(
        sorted(o.result.rows) == answers[o.job.sql] for o in unique_done
    )
    report.add_row(
        "unique queries + cache", len(unique_jobs),
        round(percentile([o.latency_s for o in unique_done], 50), 3),
        round(percentile([o.latency_s for o in unique_done], 99), 3),
        round(unique_makespan, 3), wire_kb(unique_fed),
        sum(1 for o in unique_done if o.cache is not None),
        "yes" if unique_identical else "NO",
    )

    # --- losing regime 2: tiny federation --------------------------------
    tiny_bodies = max(20, n_bodies // 10)
    tiny_serial = fresh_federation(n_bodies=tiny_bodies)
    t0 = tiny_serial.network.clock.now
    for job in jobs:
        tiny_serial.portal.submit(job["sql"])
    tiny_serial_makespan = tiny_serial.network.clock.now - t0
    tiny_fed = fresh_federation(
        n_bodies=tiny_bodies, scheduler=sched_config, cache=True
    )
    tiny_fed.network.metrics.reset()
    t0 = tiny_fed.network.clock.now
    tiny_outcomes = tiny_fed.scheduler.run([dict(job) for job in jobs])
    tiny_makespan = tiny_fed.network.clock.now - t0
    tiny_done = [o for o in tiny_outcomes if o.result is not None]
    report.add_row(
        f"tiny federation ({tiny_bodies} bodies)", len(jobs),
        round(percentile([o.latency_s for o in tiny_done], 50), 3),
        round(percentile([o.latency_s for o in tiny_done], 99), 3),
        round(tiny_makespan, 3), wire_kb(tiny_fed),
        sum(1 for o in tiny_done if o.cache is not None),
        "-",
    )

    # --- ingest commit invalidates ---------------------------------------
    live = fresh_federation(
        n_bodies=n_bodies, ingest=True, scheduler=sched_config, cache=True
    )
    hot_sql = jobs[0]["sql"]
    before = live.portal.submit(hot_sql)
    warm_hit = live.portal.submit(hot_sql)
    spec = next(s for s in live.config.surveys if s.archive == "SDSS")
    observation = observe_survey(
        spec,
        generate_bodies(live.config.sky_field, ingest_rows,
                        live.config.seed + 99),
        live.config.seed + 99,
    )
    columns = list(observation.rows[0].keys())
    ingest_result = live.ingest_client("SDSS").ingest_rows(
        spec.primary_table, columns,
        [tuple(row[c] for c in columns) for row in observation.rows],
    )
    invalidations = live.cache.stats.invalidations
    after = live.portal.submit(hot_sql)
    report.note(
        f"Ingest invalidation: hot query warm-hit ({warm_hit.cache!r}) at "
        f"epochs {before.epochs}; committing {ingest_result.rows_sent} rows "
        f"to SDSS as epoch {ingest_result.epoch} dropped "
        f"{invalidations} cache entrie(s); the next submission re-executed "
        f"(cache={after.cache!r}) at epochs {after.epochs} with "
        f"{len(after)} matches vs {len(before)} before."
    )

    # --- notes ------------------------------------------------------------
    report.note(
        f"Scheduling: {max_inflight} in-flight queries overlap their "
        f"chains through disjoint archives, so the wave makespan is the "
        f"slowest member, not the sum — "
        f"{round(serial_makespan / sched_makespan, 2)}x over the serial "
        f"portal on identical answers. The cache stacks: cold it already "
        f"coalesces repeats inside and across waves ({cold_hits} hits), "
        f"warm the whole zipf workload is answered locally "
        f"({warm_hits}/{len(jobs)} hits)."
    )
    if warm_traced is not None:
        report.note(
            f"Zero-wire reconciliation: the warm arm's traces account "
            f"{warm_traced} wire bytes across every span (plus untraced "
            f"pool) — cache hits provably never touched the federation."
        )
    report.note(
        "Losing regimes: with every query unique the cache can only miss "
        "— its arm matches 'scheduler only' on wire bytes and makespan "
        "(the memoization is pure overhead, kept off the simulated "
        "clock); on a tiny federation the absolute makespan saving is "
        "milliseconds, so the scheduler's value is fairness, not speed."
    )
    report.note(
        "E9 showed count-star performance queries warm each SkyNode's "
        "*buffer* cache (physical page reads drop; the chain still runs "
        "and still ships bytes). The portal's semantic cache composes "
        "above it: an exact or contained repeat skips the plan, the "
        "probes, and the chain entirely — zero wire bytes — while E9's "
        "warming still accelerates the misses that do execute. See "
        "docs/PERFORMANCE.md."
    )
    return report


# -- E22: end-to-end deadlines, cancellation, eager reclamation ------------------


def _e22_nodes(federation):
    nodes = list(federation.nodes.values())
    for group in federation.replicas.values():
        nodes.extend(group)
    return nodes


def _e22_residuals(federation, qid: str) -> Tuple[int, float]:
    """(leftover items, leftover KB) still owned by ``qid`` federation-wide.

    Items are streams, checkpoints, and pending chunked transfers; the KB
    figure sums every payload whose wire size is directly measurable —
    checkpointed rowsets, a stream's cached batch responses, and the
    buffered chunks of pending transfers.
    """
    from repro.transport.chunking import envelope_bytes

    items = 0
    held_bytes = 0
    for node in _e22_nodes(federation):
        crossmatch = node.crossmatch
        for stream in crossmatch._streams.values():
            if stream.qid != qid or stream.done:
                continue
            items += 1
            cached = (stream.last_response or {}).get("rows")
            if isinstance(cached, WireRowSet):
                held_bytes += envelope_bytes(cached)
        for key, checkpoint in crossmatch._checkpoints.items():
            if key.startswith(f"{qid}:"):
                items += 1
                held_bytes += envelope_bytes(checkpoint.rowset)
        for sender in (crossmatch.sender, node.query.sender):
            for tid, owner in sender._owners.items():
                if owner != qid:
                    continue
                items += 1
                for chunk in sender._transfers.get(tid, []):
                    held_bytes += envelope_bytes(chunk)
    return items, held_bytes / 1024.0


def run_e22_deadline_cancellation(
    n_bodies: int = 800,
    storm_queries: int = 6,
) -> ExperimentReport:
    """Deadline-expired queries: eager CancelQuery vs TTL-only reaping.

    A query is given a budget that expires mid-chain (chunked drains for
    the store-forward mode, bounded pull waves for the pipelined mode
    provide budget-checked operations deep into the run). Twin arms on
    identical federations differ in one switch: ``portal.eager_cancel``.
    With it on, the portal fans ``CancelQuery`` down the chain the moment
    the deadline fault surfaces and every stream, checkpoint, and chunked
    transfer the query owned is freed immediately; with it off the same
    state sits in server memory until the 600 s TTL reapers find it. The
    report measures that custody directly: leftover items and buffered KB
    the instant the degraded answer returns, the reclaim latency, and the
    wire cost of the cancel fan-out itself.

    Honest framing: in this synchronous simulation the chain stops
    executing when the deadline fault propagates, so eager cancellation
    cannot save *recompute* — the differential is custody (state held x
    seconds until reclaim) and reclaim latency, which is exactly what the
    TTL columns show. Losing regimes are measured, not hidden: the budget
    header taxes every message of a query that never comes close to its
    deadline, and a cancel storm over near-empty state ships more cancel
    bytes than it frees.
    """
    from repro.skynode.crossmatch import STREAM_TTL_S

    report = ExperimentReport(
        exp_id="E22",
        title="Query deadlines: eager cancellation vs TTL-only reaping",
        source="Section 5.3's long-running federated queries need "
        "budgets and cleanup (ROADMAP robustness item)",
        headers=[
            "arm", "mode", "cancels", "eager", "leftover items",
            "leftover KB", "reclaim s", "cancel KB", "answer after",
        ],
    )

    sql = paper_query(900.0)
    fractions = {"store-forward": 0.95, "pipelined": 0.5}

    def build(chain_mode):
        fed = fresh_federation(
            n_bodies=n_bodies,
            chain_mode=chain_mode,
            chunk_budget_bytes=1024,
            replicas=1,
        )
        if chain_mode == "pipelined":
            fed.portal.stream_pull_window = 2
        return fed

    oracle_cache: Dict[str, Tuple[Any, float]] = {}

    def oracle(chain_mode):
        if chain_mode not in oracle_cache:
            fed = build(chain_mode)
            t0 = fed.network.clock.now
            result = fed.portal.submit(sql)
            oracle_cache[chain_mode] = (result, fed.network.clock.now - t0)
        return oracle_cache[chain_mode]

    for chain_mode in ("store-forward", "pipelined"):
        oracle_result, duration = oracle(chain_mode)
        for eager in (True, False):
            fed = build(chain_mode)
            fed.portal.eager_cancel = eager
            metrics = fed.network.metrics
            portal = fed.portal
            qid = f"{portal.hostname}-q{portal.queries_served + 1}"
            deadline = (
                fed.network.clock.now + fractions[chain_mode] * duration
            )
            result = portal.submit(sql, deadline_s=deadline)
            assert result.degraded and result.rows == [], (
                f"E22 expected a mid-chain deadline fault "
                f"({chain_mode}, eager={eager}); got {result!r}"
            )
            items, held_kb = _e22_residuals(fed, qid)
            cancel_kb = metrics.total_bytes(phase="cancel") / 1024.0
            if items:
                # TTL-only custody: the state outlives the query by the
                # full reaper horizon. Prove the backstop actually fires.
                fed.network.clock.advance(STREAM_TTL_S + 1.0)
                for node in _e22_nodes(fed):
                    node.crossmatch._reap_streams()
                    node.crossmatch._reap_checkpoints()
                    for sender in (
                        node.crossmatch.sender, node.query.sender,
                    ):
                        sender.reap()
                after_items, _ = _e22_residuals(fed, qid)
                assert after_items == 0, "TTL backstop failed to reap"
                reclaim_s = STREAM_TTL_S
            else:
                reclaim_s = 0.0
            follow_up = portal.submit(sql)
            report.add_row(
                "eager cancel" if eager else "TTL-only",
                chain_mode,
                metrics.cancels,
                metrics.eager_reclaims,
                items,
                round(held_kb, 1),
                reclaim_s,
                round(cancel_kb, 2),
                "oracle" if follow_up.rows == oracle_result.rows else "NO",
            )

    # --- losing regime 1: the budget header taxes instant queries --------
    plain = fresh_federation(n_bodies=n_bodies)
    plain.network.metrics.reset()
    plain.portal.submit(sql)
    plain_bytes = sum(plain.network.metrics.bytes_by_phase().values())
    stamped = fresh_federation(n_bodies=n_bodies)
    stamped.network.metrics.reset()
    stamped.portal.submit(
        sql, deadline_s=stamped.network.clock.now + 1e9
    )
    stamped_bytes = sum(stamped.network.metrics.bytes_by_phase().values())
    header_overhead = stamped_bytes - plain_bytes
    report.note(
        f"Losing regime (instant queries): a generous deadline changes "
        f"no answer but stamps a QueryBudget header on every request — "
        f"{header_overhead} extra wire bytes "
        f"({100.0 * header_overhead / plain_bytes:.2f}%) on a query that "
        f"finishes with budget to spare. Deadlines are free only when "
        f"you do not set them."
    )

    # --- losing regime 2: a cancel storm over near-empty state -----------
    tiny = fresh_federation(
        n_bodies=max(40, n_bodies // 20),
        chain_mode="pipelined",
        chunk_budget_bytes=1024,
    )
    tiny.portal.stream_pull_window = 1
    t0 = tiny.network.clock.now
    tiny.portal.submit(sql)
    tiny_duration = tiny.network.clock.now - t0
    storm = fresh_federation(
        n_bodies=max(40, n_bodies // 20),
        chain_mode="pipelined",
        chunk_budget_bytes=1024,
    )
    storm.portal.stream_pull_window = 1
    storm.network.metrics.reset()
    degraded = 0
    for _ in range(storm_queries):
        outcome = storm.portal.submit(
            sql,
            deadline_s=storm.network.clock.now + 0.5 * tiny_duration,
        )
        degraded += 1 if outcome.degraded else 0
    storm_cancel_bytes = storm.network.metrics.total_bytes(phase="cancel")
    storm_freed = storm.network.metrics.eager_reclaims
    report.note(
        f"Losing regime (cancel storm): {degraded}/{storm_queries} "
        f"deadline-expired queries on a tiny federation fanned "
        f"{storm.network.metrics.cancels} CancelQuery calls "
        f"({storm_cancel_bytes} wire bytes) to free just {storm_freed} "
        f"residual object(s) — state so small the TTL reaper would have "
        f"handled it for zero wire bytes. Eager cancellation pays off in "
        f"proportion to the state it frees, not the queries it touches."
    )
    report.note(
        "Synchronous-simulation caveat: the chain stops executing the "
        "moment the deadline fault propagates, so no arm can waste "
        "*recompute* downstream of the fault; in a real asynchronous "
        "federation the TTL-only arm would additionally keep executing "
        "until each hop next touched the wire. The custody and "
        "reclaim-latency columns are therefore a LOWER bound on what "
        "eager cancellation saves."
    )
    report.note(
        "Integrity bars, re-checked every arm: the degraded answer is "
        "empty with a typed deadline warning (never a silent partial "
        "row set), a follow-up unbudgeted query on the same federation "
        "still returns the oracle answer ('answer after'), and the "
        "TTL-only arm's leftovers provably vanish once the reapers run."
    )
    return report


def run_e11_sharded(
    body_counts: Sequence[int] = (2_000, 30_000, 100_000),
    shards: int = 4,
    shard_key: str = "zone",
    radius_arcsec: float = 1800.0,
) -> ExperimentReport:
    """E11-sharded — scatter-gather shards vs the monolithic archive.

    Each archive registers as ``shards`` spatial shards; every chain hop
    fans out to the shards whose ownership the query can touch and merges
    in canonical order, so the *makespan* (simulated clock, not summed
    transfer work) pools each hop's scan over the shards. The winning
    regime is deliberate and disclosed: shards of one archive share a
    cluster interconnect (2 ms / 100 MB/s — the Dobos et al. successor
    systems shard inside one machine room, not across the WAN) and the
    scan is compute-bound (2e-4 s/row, a stored-procedure-heavy survey
    scan). Three losing regimes are measured rather than hidden: WAN-grade
    links between coordinator and shards, AREAs pruned to a single shard,
    and tiny tables on that same WAN link.

    Integrity bar, every arm: the sharded rows are byte-identical to the
    monolithic twin's — speed never buys a different answer.
    """
    cluster = dict(
        processing_seconds_per_row=2e-4,
        default_latency_s=0.002,
        default_bandwidth_bps=100_000_000.0,
    )
    report = ExperimentReport(
        exp_id="E11-sharded",
        title=f"Sharded SkyNodes ({shards}x {shard_key}) vs monolithic",
        source="Section 2 (federation scale-out) / Section 5.3 cost model; "
        "successor systems (Dobos et al. parallel probabilistic join)",
        headers=[
            "regime", "bodies", "mono makespan s", "sharded makespan s",
            "speedup", "rows",
        ],
    )

    def makespan(fed, sql):
        start = fed.network.clock.now
        result = fed.portal.submit(sql)
        assert not result.degraded and not result.warnings
        return fed.network.clock.now - start, list(result.rows)

    def sql_for(radius):
        return (
            "SELECT O.object_id, T.obj_id "
            "FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T "
            f"WHERE AREA(185.0, -0.5, {radius}) AND XMATCH(O, T) < 3.5"
        )

    def twin_pair(n_bodies, **net):
        mono = build_federation(
            FederationConfig(n_bodies=n_bodies, seed=42, **net)
        )
        sharded = build_federation(
            FederationConfig(
                n_bodies=n_bodies, seed=42, shards=shards,
                shard_key=shard_key, **net,
            )
        )
        return mono, sharded

    sql = sql_for(radius_arcsec)
    last_pair = None
    for n_bodies in body_counts:
        mono, sharded = twin_pair(n_bodies, **cluster)
        mono_s, mono_rows = makespan(mono, sql)
        shard_s, shard_rows = makespan(sharded, sql)
        assert shard_rows == mono_rows, "sharded answer diverged from twin"
        report.add_row(
            "cluster link", n_bodies, round(mono_s, 3), round(shard_s, 3),
            round(mono_s / shard_s, 2), len(mono_rows),
        )
        last_pair = (mono, sharded)

    # Losing regime 1: a query AREA the planner prunes to a single shard
    # — nothing left to parallelize, only fan-out overhead remains.
    mono, sharded = last_pair
    narrow = sql_for(120.0)
    mono_s, mono_rows = makespan(mono, narrow)
    shard_s, shard_rows = makespan(sharded, narrow)
    assert shard_rows == mono_rows
    report.add_row(
        "single-shard AREA", "(reuse)", round(mono_s, 3), round(shard_s, 3),
        round(mono_s / shard_s, 2), len(mono_rows),
    )

    # Losing regimes 2+3: WAN-grade links (the seed's defaults: 50 ms,
    # 1 MB/s) between coordinator and shards. Re-shipping every hop's
    # tuple set across a WAN costs more than parallel scanning saves —
    # catastrophically so for a tiny table.
    for label, n_bodies in (("wan link", body_counts[0]),):
        mono, sharded = twin_pair(
            n_bodies, processing_seconds_per_row=2e-4
        )
        mono_s, mono_rows = makespan(mono, sql)
        shard_s, shard_rows = makespan(sharded, sql)
        assert shard_rows == mono_rows
        report.add_row(
            label, n_bodies, round(mono_s, 3), round(shard_s, 3),
            round(mono_s / shard_s, 2), len(mono_rows),
        )

    report.note(
        "Makespan is the simulated clock delta across the submission "
        "(scatter-gather hops pool inside network.parallel regions), not "
        "summed transfer work; total wire bytes are strictly HIGHER "
        "sharded, because every hop re-ships its tuple set to the owning "
        "shards and gathers match rows back."
    )
    report.note(
        "Winning regime: compute-bound scans over cluster links, growing "
        "with table size. Losing regimes measured above: a WAN between "
        "coordinator and shards (fan-out re-shipping dominates), and "
        "AREAs whose ownership pruning leaves one shard (pure overhead). "
        "HTM-key match hops broadcast tuples to every shard (no cheap "
        "per-tuple ownership test), a further documented tax."
    )
    report.note(
        "Integrity bar: every arm asserts the sharded rows byte-equal "
        "the monolithic twin's before timing counts."
    )
    return report
