"""The experiment harness behind ``benchmarks/``.

Each ``run_eN`` function reproduces one figure or quantitative claim of the
paper (see DESIGN.md's experiment table) and returns an
:class:`~repro.bench.reporting.ExperimentReport` whose rows are what the
benchmark files print and EXPERIMENTS.md records.
"""

from repro.bench.reporting import ExperimentReport
from repro.bench.scenarios import (
    PAPER_QUERY,
    PAPER_QUERY_DROPOUT,
    build_figure2_federation,
    standard_federation,
)
from repro.bench.experiments import (
    run_e1_architecture,
    run_e2_xmatch_semantics,
    run_e3_execution_flow,
    run_e4_countstar_ordering,
    run_e5_chain_vs_pull,
    run_e6_chunking,
    run_e7_soap_overhead,
    run_e8_htm_rangesearch,
    run_e9_cache_warming,
    run_e10_symmetry_accuracy,
    run_e11_scalability,
    run_e11_sharded,
    run_e12_radius_ablation,
    run_e13_async_dispatch,
    run_e14_byte_ordering,
    run_e15_fault_recovery,
    run_e16_kernel_speedup,
    run_e17_pipelined_chain,
    run_e18_failover_recovery,
    run_e19_ingest_under_load,
    run_e20_zone_engine,
    run_e21_scheduler_cache,
    run_e22_deadline_cancellation,
)

ALL_EXPERIMENTS = (
    run_e1_architecture,
    run_e2_xmatch_semantics,
    run_e3_execution_flow,
    run_e4_countstar_ordering,
    run_e5_chain_vs_pull,
    run_e6_chunking,
    run_e7_soap_overhead,
    run_e8_htm_rangesearch,
    run_e9_cache_warming,
    run_e10_symmetry_accuracy,
    run_e11_scalability,
    run_e11_sharded,
    run_e12_radius_ablation,
    run_e13_async_dispatch,
    run_e14_byte_ordering,
    run_e15_fault_recovery,
    run_e16_kernel_speedup,
    run_e17_pipelined_chain,
    run_e18_failover_recovery,
    run_e19_ingest_under_load,
    run_e20_zone_engine,
    run_e21_scheduler_cache,
    run_e22_deadline_cancellation,
)

__all__ = [
    "ExperimentReport",
    "PAPER_QUERY",
    "PAPER_QUERY_DROPOUT",
    "build_figure2_federation",
    "standard_federation",
    "ALL_EXPERIMENTS",
    "run_e1_architecture",
    "run_e2_xmatch_semantics",
    "run_e3_execution_flow",
    "run_e4_countstar_ordering",
    "run_e5_chain_vs_pull",
    "run_e6_chunking",
    "run_e7_soap_overhead",
    "run_e8_htm_rangesearch",
    "run_e9_cache_warming",
    "run_e10_symmetry_accuracy",
    "run_e11_scalability",
    "run_e11_sharded",
    "run_e12_radius_ablation",
    "run_e13_async_dispatch",
    "run_e14_byte_ordering",
    "run_e15_fault_recovery",
    "run_e16_kernel_speedup",
    "run_e17_pipelined_chain",
    "run_e18_failover_recovery",
    "run_e19_ingest_under_load",
    "run_e20_zone_engine",
    "run_e21_scheduler_cache",
    "run_e22_deadline_cancellation",
]
