"""HTTP/1.1 message objects (rendered for size accounting).

SOAP-over-HTTP needs only one extra header beyond a normal POST — the
``SOAPAction`` field the paper calls out in Section 3.1 — so requests here
are ordinary HTTP messages whose rendered byte size is what the network
simulator charges to the link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict
from urllib.parse import urlparse

from repro.errors import TransportError


@dataclass
class HttpRequest:
    """An HTTP request with a rendered wire size."""

    method: str
    url: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def host(self) -> str:
        """The target host (netloc) of the URL."""
        parsed = urlparse(self.url)
        if parsed.scheme != "http" or not parsed.netloc:
            raise TransportError(f"unsupported URL {self.url!r}")
        return parsed.netloc

    @property
    def path(self) -> str:
        """The URL path ('/' if empty)."""
        return urlparse(self.url).path or "/"

    def render(self) -> bytes:
        """Serialize to wire bytes (request line + headers + body)."""
        headers = dict(self.headers)
        headers.setdefault("Host", self.host)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body

    @property
    def wire_bytes(self) -> int:
        """Total bytes this message puts on the wire."""
        return len(self.render())


@dataclass
class HttpResponse:
    """An HTTP response with a rendered wire size."""

    status: int
    reason: str = "OK"
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def render(self) -> bytes:
        """Serialize to wire bytes (status line + headers + body)."""
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body

    @property
    def wire_bytes(self) -> int:
        """Total bytes this message puts on the wire."""
        return len(self.render())

    @property
    def ok(self) -> bool:
        """True for 2xx statuses."""
        return 200 <= self.status < 300


def soap_request(url: str, soap_action: str, envelope_xml: str) -> HttpRequest:
    """Wrap a SOAP envelope in the standard HTTP POST."""
    return HttpRequest(
        method="POST",
        url=url,
        headers={
            "Content-Type": "text/xml; charset=utf-8",
            "SOAPAction": f'"{soap_action}"',
        },
        body=envelope_xml.encode("utf-8"),
    )
