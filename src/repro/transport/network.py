"""The simulated Internet between federation hosts.

Hosts register an HTTP handler under a hostname; links between host pairs
have latency and bandwidth. Delivering a message advances a deterministic
clock by ``latency + wire_bytes / bandwidth`` in each direction, and every
message is recorded in :class:`~repro.transport.metrics.NetworkMetrics`
under the currently active *phase* label (registration, performance-query,
cross-match chain, ...), which is what the benchmarks report.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.errors import TransportError
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.metrics import MessageRecord, NetworkMetrics

Handler = Callable[[HttpRequest], HttpResponse]


class SimClock:
    """A deterministic simulated clock (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r}")
        self.now += seconds


@dataclass(frozen=True)
class Link:
    """Directed link properties."""

    latency_s: float = 0.05
    bandwidth_bps: float = 1_000_000.0  # bytes per second

    def transfer_time(self, wire_bytes: int) -> float:
        """Seconds to deliver a message of the given size."""
        return self.latency_s + wire_bytes / self.bandwidth_bps


class SimulatedNetwork:
    """Host registry + link model + metrics, with phase tagging."""

    LOCAL_PHASE = "unspecified"

    def __init__(
        self,
        *,
        default_latency_s: float = 0.05,
        default_bandwidth_bps: float = 1_000_000.0,
    ) -> None:
        self.clock = SimClock()
        self.metrics = NetworkMetrics()
        self._default_link = Link(default_latency_s, default_bandwidth_bps)
        self._links: Dict[Tuple[str, str], Link] = {}
        self._hosts: Dict[str, Handler] = {}
        self._phase_stack: list[str] = []
        self._failed_hosts: set[str] = set()
        self._parallel_stack: list[list[float]] = []
        self._request_depth = 0

    # -- topology -------------------------------------------------------------

    def add_host(self, hostname: str, handler: Handler) -> None:
        """Register an HTTP handler for a hostname."""
        if hostname in self._hosts:
            raise TransportError(f"host {hostname!r} already registered")
        self._hosts[hostname] = handler

    def remove_host(self, hostname: str) -> None:
        """Unregister a host (it becomes unreachable)."""
        self._hosts.pop(hostname, None)

    def has_host(self, hostname: str) -> bool:
        """True if a handler is registered for the hostname."""
        return hostname in self._hosts

    def hostnames(self) -> list[str]:
        """All registered hostnames."""
        return sorted(self._hosts)

    def set_link(
        self,
        src: str,
        dst: str,
        *,
        latency_s: Optional[float] = None,
        bandwidth_bps: Optional[float] = None,
        symmetric: bool = True,
    ) -> None:
        """Override link properties between two hosts."""
        link = Link(
            latency_s if latency_s is not None else self._default_link.latency_s,
            bandwidth_bps
            if bandwidth_bps is not None
            else self._default_link.bandwidth_bps,
        )
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def link(self, src: str, dst: str) -> Link:
        """The link used from src to dst (default if not overridden)."""
        return self._links.get((src, dst), self._default_link)

    # -- failure injection --------------------------------------------------------

    def fail_host(self, hostname: str) -> None:
        """Partition a host off the network (requests to it now fail)."""
        self._failed_hosts.add(hostname)

    def restore_host(self, hostname: str) -> None:
        """Bring a failed host back."""
        self._failed_hosts.discard(hostname)

    def is_failed(self, hostname: str) -> bool:
        """True if the host is currently partitioned off."""
        return hostname in self._failed_hosts

    # -- phase tagging ----------------------------------------------------------

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Tag all messages sent inside the block with a phase label."""
        self._phase_stack.append(label)
        try:
            yield
        finally:
            self._phase_stack.pop()

    @property
    def current_phase(self) -> str:
        """The innermost active phase label."""
        return self._phase_stack[-1] if self._phase_stack else self.LOCAL_PHASE

    @contextmanager
    def parallel(self) -> Iterator[None]:
        """Treat the requests issued inside the block as dispatched together.

        The paper sends performance queries "as asynchronous SOAP messages";
        with concurrent dispatch the elapsed (clock) time is the *makespan*
        — the slowest request — rather than the sum. Byte metrics are
        unaffected. Each top-level request inside the block contributes its
        duration to a pool; on exit the clock advances by max instead of sum.
        """
        start = self.clock.now
        self._parallel_stack.append([])
        try:
            yield
        finally:
            durations = self._parallel_stack.pop()
            if not self._parallel_stack:
                self.clock.now = start + (max(durations) if durations else 0.0)

    # -- message delivery ---------------------------------------------------------

    def request(
        self, src_host: str, request: HttpRequest, *, operation: str = ""
    ) -> HttpResponse:
        """Deliver an HTTP request from ``src_host`` and return the response.

        Charges both directions to the clock and records both messages.
        Inside a :meth:`parallel` block, top-level requests contribute
        their duration to the block's makespan pool instead of serializing.
        """
        dst_host = request.host
        if src_host in self._failed_hosts:
            raise TransportError(f"host {src_host!r} is down")
        if dst_host in self._failed_hosts:
            raise TransportError(f"no route to host {dst_host!r}: host is down")
        handler = self._hosts.get(dst_host)
        if handler is None:
            raise TransportError(f"no route to host {dst_host!r}")

        outermost_parallel = (
            bool(self._parallel_stack) and self._request_depth == 0
        )
        started = self.clock.now
        self._request_depth += 1
        try:
            self._deliver(
                src_host, dst_host, request.wire_bytes, "request", operation
            )
            response = handler(request)
            self._deliver(
                dst_host, src_host, response.wire_bytes, "response", operation
            )
        finally:
            self._request_depth -= 1
        if outermost_parallel:
            self._parallel_stack[-1].append(self.clock.now - started)
            self.clock.now = started  # rewind; parallel() advances by the max
        return response

    def _deliver(
        self, src: str, dst: str, wire_bytes: int, kind: str, operation: str
    ) -> None:
        link = self.link(src, dst)
        elapsed = link.transfer_time(wire_bytes)
        self.clock.advance(elapsed)
        self.metrics.simulated_seconds += elapsed
        self.metrics.record(
            MessageRecord(
                src=src,
                dst=dst,
                wire_bytes=wire_bytes,
                kind=kind,
                phase=self.current_phase,
                operation=operation,
                sim_time=self.clock.now,
            )
        )
