"""The simulated Internet between federation hosts.

Hosts register an HTTP handler under a hostname; links between host pairs
have latency and bandwidth. Delivering a message advances a deterministic
clock by ``latency + wire_bytes / bandwidth`` in each direction, and every
message is recorded in :class:`~repro.transport.metrics.NetworkMetrics`
under the currently active *phase* label (registration, performance-query,
cross-match chain, ...), which is what the benchmarks report.

Failures come in two flavours: the binary partition of
:meth:`SimulatedNetwork.fail_host`, and the scripted transient faults of a
:class:`~repro.transport.faults.FaultPlan` (request/response drops, latency
spikes, scheduled outages) — all deterministic, all counted in the metrics.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.budget import use_request_clock
from repro.errors import RequestTimeoutError, TransportError
from repro.tracing.tracer import Tracer, use_tracer
from repro.transport.faults import FaultPlan
from repro.transport.http import HttpRequest, HttpResponse
from repro.transport.metrics import MessageRecord, NetworkMetrics

Handler = Callable[[HttpRequest], HttpResponse]

#: How long a caller without an explicit timeout waits for a lost message.
DEFAULT_TIMEOUT_S = 30.0


class SimClock:
    """A deterministic simulated clock (seconds)."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r}")
        self.now += seconds


@dataclass(frozen=True)
class Link:
    """Directed link properties."""

    latency_s: float = 0.05
    bandwidth_bps: float = 1_000_000.0  # bytes per second

    def transfer_time(self, wire_bytes: int) -> float:
        """Seconds to deliver a message of the given size."""
        return self.latency_s + wire_bytes / self.bandwidth_bps


class SimulatedNetwork:
    """Host registry + link model + metrics, with phase tagging."""

    LOCAL_PHASE = "unspecified"

    def __init__(
        self,
        *,
        default_latency_s: float = 0.05,
        default_bandwidth_bps: float = 1_000_000.0,
        default_timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        self.clock = SimClock()
        self.metrics = NetworkMetrics()
        self._default_link = Link(default_latency_s, default_bandwidth_bps)
        self.default_timeout_s = default_timeout_s
        self._links: Dict[Tuple[str, str], Link] = {}
        self._hosts: Dict[str, Handler] = {}
        self._phase_stack: list[str] = []
        self._failed_hosts: set[str] = set()
        #: Per-host callbacks fired once when a scheduled crash's time
        #: passes: servers register these to wipe their volatile state.
        self._crash_callbacks: Dict[str, list[Callable[[], None]]] = {}
        #: (entry request-depth, pooled branch durations) per open block.
        self._parallel_stack: list[Tuple[int, list[float]]] = []
        self._request_depth = 0
        self.fault_plan: Optional[FaultPlan] = None
        #: Distributed tracer (None = tracing off, zero wire/behaviour
        #: difference). Install via :meth:`install_tracer`.
        self.tracer: Optional[Tracer] = None

    # -- tracing --------------------------------------------------------------

    def install_tracer(self, tracer: Optional[Tracer]) -> None:
        """Attach a tracer, binding it to the sim clock and phase labels."""
        self.tracer = tracer
        if tracer is not None:
            tracer.clock_fn = lambda: self.clock.now
            tracer.phase_fn = lambda: self.current_phase

    def _trace_fault(self, kind: str) -> None:
        """Count an injected fault AND annotate the active span with it."""
        self.metrics.record_fault(kind)
        if self.tracer is not None:
            self.tracer.annotate("fault", kind=kind)

    # -- topology -------------------------------------------------------------

    def add_host(self, hostname: str, handler: Handler) -> None:
        """Register an HTTP handler for a hostname."""
        if hostname in self._hosts:
            raise TransportError(f"host {hostname!r} already registered")
        self._hosts[hostname] = handler

    def remove_host(self, hostname: str) -> None:
        """Unregister a host (it becomes unreachable)."""
        if hostname not in self._hosts:
            raise TransportError(f"host {hostname!r} is not registered")
        del self._hosts[hostname]

    def has_host(self, hostname: str) -> bool:
        """True if a handler is registered for the hostname."""
        return hostname in self._hosts

    def hostnames(self) -> list[str]:
        """All registered hostnames."""
        return sorted(self._hosts)

    def set_link(
        self,
        src: str,
        dst: str,
        *,
        latency_s: Optional[float] = None,
        bandwidth_bps: Optional[float] = None,
        symmetric: bool = True,
    ) -> None:
        """Override link properties between two hosts."""
        link = Link(
            latency_s if latency_s is not None else self._default_link.latency_s,
            bandwidth_bps
            if bandwidth_bps is not None
            else self._default_link.bandwidth_bps,
        )
        self._links[(src, dst)] = link
        if symmetric:
            self._links[(dst, src)] = link

    def link(self, src: str, dst: str) -> Link:
        """The link used from src to dst (default if not overridden)."""
        return self._links.get((src, dst), self._default_link)

    # -- failure injection --------------------------------------------------------

    def fail_host(self, hostname: str) -> None:
        """Partition a host off the network (requests to it now fail)."""
        self._failed_hosts.add(hostname)

    def restore_host(self, hostname: str) -> None:
        """Bring a failed host back."""
        self._failed_hosts.discard(hostname)

    def is_failed(self, hostname: str) -> bool:
        """True if the host is currently partitioned off."""
        return hostname in self._failed_hosts

    def set_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Install (or clear, with None) the scripted fault plan."""
        self.fault_plan = plan

    def on_crash(self, hostname: str, callback: Callable[[], None]) -> None:
        """Register a volatile-state wipe to run when ``hostname`` crashes.

        A :meth:`FaultPlan.crash <repro.transport.faults.FaultPlan.crash>`
        event fires each host's callbacks exactly once, lazily, the first
        time the network moves a message after the crash instant.
        """
        self._crash_callbacks.setdefault(hostname, []).append(callback)

    def _fire_due_crashes(self) -> None:
        """Deliver the state-wipe side effect of crashes whose time passed."""
        if self.fault_plan is None:
            return
        for host in self.fault_plan.due_crashes(self.clock.now):
            self._trace_fault("crash")
            for callback in self._crash_callbacks.get(host, []):
                callback()

    def _host_down(self, hostname: str) -> Optional[str]:
        """Why the host is unreachable right now, or None if it is fine."""
        if hostname in self._failed_hosts:
            return "host is down"
        if self.fault_plan is not None:
            if self.fault_plan.host_crashed(hostname, self.clock.now):
                return "crashed"
            if self.fault_plan.host_in_outage(hostname, self.clock.now):
                return "scheduled outage"
        return None

    # -- phase tagging ----------------------------------------------------------

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Tag all messages sent inside the block with a phase label."""
        self._phase_stack.append(label)
        try:
            yield
        finally:
            self._phase_stack.pop()

    @property
    def current_phase(self) -> str:
        """The innermost active phase label."""
        return self._phase_stack[-1] if self._phase_stack else self.LOCAL_PHASE

    @contextmanager
    def parallel(self) -> Iterator[None]:
        """Treat the requests issued inside the block as dispatched together.

        The paper sends performance queries "as asynchronous SOAP messages";
        with concurrent dispatch the elapsed (clock) time is the *makespan*
        — the slowest request — rather than the sum. Byte metrics are
        unaffected. Each request issued directly inside the block (at the
        block's own nesting depth) contributes its duration to a pool; on
        exit the clock advances by max instead of sum.

        Blocks compose: a ``parallel()`` opened inside a service handler
        pools that handler's fan-out, and the whole block then acts as one
        branch of any enclosing block at the same depth.
        """
        start = self.clock.now
        span = None
        if self.tracer is not None:
            # One internal span for the whole fan-out: every request issued
            # in the block (count-star probes, batch pulls, ...) becomes a
            # child, and the span's interval is the block's makespan.
            enclosing = self.tracer.current_span()
            span = self.tracer.begin(
                "parallel",
                host=enclosing.host if enclosing is not None else "",
            )
        self._parallel_stack.append((self._request_depth, []))
        try:
            yield
        finally:
            _, durations = self._parallel_stack.pop()
            if durations:
                self.clock.now = start + max(durations)
            if span is not None:
                # Close at the makespan instant, before any rewind for an
                # enclosing block (which re-pools this block as one branch).
                self.tracer.finish(span)
            if self._in_parallel_block():
                self._parallel_stack[-1][1].append(self.clock.now - start)
                self.clock.now = start  # enclosing block advances by the max

    def _in_parallel_block(self) -> bool:
        """True when work at the current depth pools into a parallel block."""
        return bool(
            self._parallel_stack
            and self._parallel_stack[-1][0] == self._request_depth
        )

    @contextmanager
    def branch(self) -> Iterator[None]:
        """Group sequential work (requests, backoff waits) as ONE parallel branch.

        A retried call is several round trips plus backoff sleeps that must
        serialize *within* their branch of a :meth:`parallel` block while
        still overlapping with sibling branches. Outside a parallel block
        this is a no-op.
        """
        if not self._in_parallel_block():
            yield
            return
        started = self.clock.now
        self._request_depth += 1
        try:
            yield
        finally:
            self._request_depth -= 1
            self._parallel_stack[-1][1].append(self.clock.now - started)
            self.clock.now = started  # rewind; parallel() advances by the max

    # -- time -----------------------------------------------------------------

    def sleep(self, seconds: float) -> None:
        """Advance the clock for a deliberate wait (retry backoff)."""
        if seconds <= 0.0:
            return
        self.clock.advance(seconds)
        self.metrics.backoff_seconds += seconds

    # -- message delivery ---------------------------------------------------------

    def request(
        self,
        src_host: str,
        request: HttpRequest,
        *,
        operation: str = "",
        timeout_s: Optional[float] = None,
    ) -> HttpResponse:
        """Deliver an HTTP request from ``src_host`` and return the response.

        Charges both directions to the clock and records both messages.
        Inside a :meth:`parallel` block, top-level requests contribute
        their duration to the block's makespan pool instead of serializing.

        ``timeout_s`` bounds each *transfer direction*: when the fault plan
        drops a message, or a latency spike makes a transfer slower than the
        timeout, the caller waits out the timeout on the sim clock and gets
        a :class:`~repro.errors.RequestTimeoutError`.
        """
        dst_host = request.host
        self._fire_due_crashes()
        if src_host in self._failed_hosts:
            raise TransportError(f"host {src_host!r} is down")
        if self.fault_plan is not None and self.fault_plan.host_crashed(
            src_host, self.clock.now
        ):
            # The caller's own process died (e.g. mid-cascade): whatever it
            # was about to send never leaves the host.
            raise TransportError(f"host {src_host!r} crashed")
        down = self._host_down(dst_host)
        if down is not None:
            if down == "scheduled outage":
                self._trace_fault("outage")
            raise TransportError(f"no route to host {dst_host!r}: {down}")
        handler = self._hosts.get(dst_host)
        if handler is None:
            raise TransportError(f"no route to host {dst_host!r}")

        pooled = self._in_parallel_block()
        started = self.clock.now
        self._request_depth += 1
        try:
            self._deliver(
                src_host, dst_host, request.wire_bytes, "request", operation,
                timeout_s,
            )
            if self.fault_plan is not None and self.fault_plan.host_crashed(
                dst_host, self.clock.now
            ):
                # The destination crashed while the request was on the wire.
                self._fire_due_crashes()
                self._trace_fault("crash-drop")
                self._time_out(timeout_s, "request", src_host, dst_host,
                               operation)
            # Handlers read "now" (for budget checks) through the same
            # scope mechanism as the tracer — no server owns a clock.
            with use_tracer(self.tracer), use_request_clock(
                lambda: self.clock.now
            ):
                response = handler(request)
            self._deliver(
                dst_host, src_host, response.wire_bytes, "response", operation,
                timeout_s,
            )
        finally:
            self._request_depth -= 1
            if pooled:
                self._parallel_stack[-1][1].append(self.clock.now - started)
                self.clock.now = started  # rewind; parallel() advances by max
        return response

    def _deliver(
        self,
        src: str,
        dst: str,
        wire_bytes: int,
        kind: str,
        operation: str,
        timeout_s: Optional[float] = None,
    ) -> None:
        extra_latency = 0.0
        if kind == "response":
            # The handler may have advanced the clock past a scheduled
            # crash of the responding host: its process died before the
            # response hit the wire, so the in-flight request is killed
            # (the caller waits out its timeout), not merely future ones.
            self._fire_due_crashes()
            if self.fault_plan is not None and self.fault_plan.host_crashed(
                src, self.clock.now
            ):
                self._trace_fault("crash-drop")
                self._time_out(timeout_s, kind, src, dst, operation)
        if self.fault_plan is not None:
            decision = self.fault_plan.on_message(
                kind, src, dst, self.clock.now
            )
            if decision is not None:
                if decision.drop:
                    self._trace_fault(f"{kind}-drop")
                    self._time_out(timeout_s, kind, src, dst, operation)
                if decision.extra_latency_s > 0.0:
                    self._trace_fault("latency-spike")
                    extra_latency = decision.extra_latency_s
        link = self.link(src, dst)
        elapsed = link.transfer_time(wire_bytes) + extra_latency
        if timeout_s is not None and elapsed > timeout_s:
            self._time_out(timeout_s, kind, src, dst, operation)
        self.clock.advance(elapsed)
        self.metrics.simulated_seconds += elapsed
        self.metrics.record(
            MessageRecord(
                src=src,
                dst=dst,
                wire_bytes=wire_bytes,
                kind=kind,
                phase=self.current_phase,
                operation=operation,
                sim_time=self.clock.now,
            )
        )
        if self.tracer is not None:
            # Mirror the flat byte counters onto the span active on the
            # caller's side of the wire, so the two views reconcile.
            self.tracer.add_wire_bytes(wire_bytes)

    def _time_out(
        self,
        timeout_s: Optional[float],
        kind: str,
        src: str,
        dst: str,
        operation: str,
    ) -> None:
        """Wait out the caller's timeout on the sim clock, then raise."""
        wait = timeout_s if timeout_s is not None else self.default_timeout_s
        self.clock.advance(wait)
        self.metrics.timeouts += 1
        if self.tracer is not None:
            self.tracer.annotate(
                "timeout", kind=kind, operation=operation, waited_s=wait
            )
        label = f" ({operation})" if operation else ""
        raise RequestTimeoutError(
            f"{kind} from {src!r} to {dst!r}{label} timed out "
            f"after {wait:g}s",
            timeout_s=wait,
        )
