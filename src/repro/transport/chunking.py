"""Splitting large rowsets into SOAP-sized chunks.

The paper's workaround for the XML parser's memory ceiling (Section 6):
"We worked around by dividing large data sets into smaller chunks." These
helpers split a rowset so each chunk's *serialized SOAP envelope* stays
under a byte budget; the cross-match services then ship partial results as
a sequence of chunk messages instead of one monolithic envelope.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SoapError
from repro.soap.encoding import WireRowSet
from repro.soap.envelope import build_rpc_response


def chunk_rowset(rowset: WireRowSet, rows_per_chunk: int) -> List[WireRowSet]:
    """Split into chunks of at most ``rows_per_chunk`` rows.

    An empty rowset still produces one (empty) chunk so receivers always
    get the schema.
    """
    if rows_per_chunk < 1:
        raise SoapError(f"rows_per_chunk must be >= 1, got {rows_per_chunk}")
    if not rowset.rows:
        return [rowset.slice(0, 0)]
    return [
        rowset.slice(start, start + rows_per_chunk)
        for start in range(0, len(rowset.rows), rows_per_chunk)
    ]


def batch_slices(total: int, batch_size: int) -> List[Tuple[int, int]]:
    """Partition ``total`` items into ``[start, stop)`` batch ranges.

    The streaming chain's planning helper: zero items still yield one
    (empty) batch so every stream serves at least one batch and the schema
    always reaches the consumer — mirroring :func:`chunk_rowset`.
    """
    if batch_size < 1:
        raise SoapError(f"batch_size must be >= 1, got {batch_size}")
    if total < 0:
        raise SoapError(f"total must be >= 0, got {total}")
    if total == 0:
        return [(0, 0)]
    return [
        (start, min(start + batch_size, total))
        for start in range(0, total, batch_size)
    ]


def envelope_bytes(rowset: WireRowSet) -> int:
    """Serialized size of a rowset inside a SOAP response envelope."""
    return len(build_rpc_response("Chunk", rowset).encode("utf-8"))


def split_for_budget(rowset: WireRowSet, byte_budget: int) -> List[WireRowSet]:
    """Split so every chunk's SOAP envelope fits in ``byte_budget`` bytes.

    Estimates bytes-per-row from a sample serialization, then verifies each
    chunk and bisects any that still exceed the budget (rows vary in width).
    """
    if byte_budget < 1:
        raise SoapError(f"byte_budget must be >= 1, got {byte_budget}")
    empty_overhead = envelope_bytes(rowset.slice(0, 0))
    if empty_overhead >= byte_budget:
        raise SoapError(
            f"byte_budget {byte_budget} smaller than envelope overhead "
            f"{empty_overhead}"
        )
    if not rowset.rows:
        return [rowset.slice(0, 0)]

    sample = rowset.slice(0, min(len(rowset.rows), 64))
    per_row = max(
        1.0, (envelope_bytes(sample) - empty_overhead) / max(1, len(sample.rows))
    )
    guess = max(1, int((byte_budget - empty_overhead) / per_row))

    chunks: List[WireRowSet] = []
    pending = chunk_rowset(rowset, guess)
    while pending:
        chunk = pending.pop(0)
        if len(chunk.rows) > 1 and envelope_bytes(chunk) > byte_budget:
            half = len(chunk.rows) // 2
            pending.insert(0, chunk.slice(half, len(chunk.rows)))
            pending.insert(0, chunk.slice(0, half))
            continue
        chunks.append(chunk)
    return chunks
