"""Deterministic fault injection for the simulated Internet.

The seed's failure model was a single binary partition
(:meth:`~repro.transport.network.SimulatedNetwork.fail_host`). Real
federations of autonomous archives fail in messier ways: a request is
dropped on the floor, a response never comes back, a link stalls long
enough for the caller to time out, a host flaps while it warms up, or a
whole archive goes away for a maintenance window. A :class:`FaultPlan`
scripts all of these against the *simulated* clock with seeded randomness,
so a resilience test or benchmark replays the exact same fault sequence on
every run.

Attach a plan with
:meth:`~repro.transport.network.SimulatedNetwork.set_fault_plan`; every
injected fault is counted in
:class:`~repro.transport.metrics.NetworkMetrics`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class FaultDecision:
    """What the plan wants done to one message."""

    drop: bool = False
    extra_latency_s: float = 0.0
    label: str = ""


@dataclass
class CrashEvent:
    """A scheduled process crash: the host dies at ``at_s`` and loses all
    volatile state (open streams, pending transfers, checkpoints); it stays
    unreachable until ``recover_s`` (forever by default)."""

    host: str
    at_s: float
    recover_s: float = math.inf
    #: Whether the network has already delivered the state-wipe side effect.
    fired: bool = False

    def covers(self, now: float) -> bool:
        """True while the host is down because of this crash."""
        return self.at_s <= now < self.recover_s


@dataclass
class OutageWindow:
    """A scheduled outage: the host is unreachable on [start_s, end_s)."""

    host: str
    start_s: float
    end_s: float

    def covers(self, now: float) -> bool:
        """True while the sim clock is inside the window."""
        return self.start_s <= now < self.end_s


@dataclass
class _Rule:
    """One fault rule; matching messages consult it in insertion order."""

    direction: str  # "request" | "response"
    src: Optional[str]
    dst: Optional[str]
    rate: float
    first_n: Optional[int]
    extra_latency_s: float  # 0 => drop the message; >0 => delay it
    label: str
    rng: random.Random
    seen: int = 0
    injected: int = 0

    def matches(self, direction: str, src: str, dst: str) -> bool:
        return (
            self.direction == direction
            and (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
        )

    def fires(self) -> bool:
        """Decide (deterministically) whether this rule hits the message."""
        self.seen += 1
        if self.first_n is not None:
            hit = self.seen <= self.first_n
        else:
            hit = self.rng.random() < self.rate
        if hit:
            self.injected += 1
        return hit


class FaultPlan:
    """A seeded, scripted set of fault rules and outage windows.

    Every probabilistic rule owns its own :class:`random.Random` derived
    from ``(seed, rule index)``, so adding a rule never perturbs the draws
    of the others and the same plan replays identically.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rules: List[_Rule] = []
        self._outages: List[OutageWindow] = []
        self._crashes: List[CrashEvent] = []

    # -- scripting ------------------------------------------------------------

    def _add_rule(
        self,
        direction: str,
        src: Optional[str],
        dst: Optional[str],
        rate: float,
        first_n: Optional[int],
        extra_latency_s: float,
        label: str,
    ) -> "FaultPlan":
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate {rate!r} not in [0, 1]")
        rng = random.Random(f"{self.seed}:{len(self._rules)}")
        self._rules.append(
            _Rule(direction, src, dst, rate, first_n, extra_latency_s,
                  label or f"rule{len(self._rules)}", rng)
        )
        return self

    def drop_requests(
        self,
        *,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        rate: float = 1.0,
        first_n: Optional[int] = None,
        label: str = "",
    ) -> "FaultPlan":
        """Drop requests on a link/host: at ``rate``, or the ``first_n`` seen.

        ``first_n`` models a flaky-first-N schedule (a host that fails while
        warming up); it takes precedence over ``rate``.
        """
        return self._add_rule("request", src, dst, rate, first_n, 0.0, label)

    def drop_responses(
        self,
        *,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        rate: float = 1.0,
        first_n: Optional[int] = None,
        label: str = "",
    ) -> "FaultPlan":
        """Drop responses after the handler ran (the caller still times out).

        Note ``src``/``dst`` are the *response* endpoints: the responding
        host is the source.
        """
        return self._add_rule("response", src, dst, rate, first_n, 0.0, label)

    def latency_spikes(
        self,
        *,
        src: Optional[str] = None,
        dst: Optional[str] = None,
        rate: float = 1.0,
        extra_s: float = 0.0,
        direction: str = "request",
        label: str = "",
    ) -> "FaultPlan":
        """Add ``extra_s`` of latency to matching messages at ``rate``.

        A spike larger than the caller's timeout turns into a
        :class:`~repro.errors.RequestTimeoutError`.
        """
        if extra_s <= 0.0:
            raise ValueError("latency spikes need extra_s > 0")
        if direction not in ("request", "response"):
            raise ValueError(f"unknown direction {direction!r}")
        return self._add_rule(direction, src, dst, rate, None, extra_s, label)

    def outage(self, host: str, start_s: float, end_s: float) -> "FaultPlan":
        """Schedule an outage window for a host on the sim clock."""
        if end_s <= start_s:
            raise ValueError(f"empty outage window [{start_s}, {end_s})")
        self._outages.append(OutageWindow(host, start_s, end_s))
        return self

    def crash(self, host: str, at_s: float) -> "FaultPlan":
        """Schedule a process crash for ``host`` at ``at_s`` (sim seconds).

        Unlike :meth:`outage`, a crash also *kills in-flight work*: the
        response of any request the host is serving when the clock passes
        ``at_s`` is lost (the caller times out), and the host's volatile
        server state — open streams, pending chunked transfers, cached
        checkpoints — is wiped via the network's crash callbacks. The host
        stays unreachable until a matching :meth:`recover`.
        """
        if at_s < 0.0:
            raise ValueError(f"crash time {at_s!r} must be >= 0")
        self._crashes.append(CrashEvent(host, at_s))
        return self

    def recover(self, host: str, at_s: float) -> "FaultPlan":
        """Schedule the crashed ``host`` to come back at ``at_s``.

        Recovery restores reachability only: the volatile state lost at
        crash time stays lost (durable tables survive, as a restarted
        process would find them on disk).
        """
        for event in reversed(self._crashes):
            if event.host == host and math.isinf(event.recover_s):
                if at_s <= event.at_s:
                    raise ValueError(
                        f"recover time {at_s!r} must be after the crash "
                        f"at {event.at_s!r}"
                    )
                event.recover_s = at_s
                return self
        raise ValueError(f"no unrecovered crash scheduled for {host!r}")

    # -- consultation (called by the network) --------------------------------------

    def host_in_outage(self, host: str, now: float) -> bool:
        """True if any outage window covers the host right now."""
        return any(
            w.host == host and w.covers(now) for w in self._outages
        )

    def host_crashed(self, host: str, now: float) -> bool:
        """True if the host is down because of a crash right now."""
        return any(
            event.host == host and event.covers(now)
            for event in self._crashes
        )

    def due_crashes(self, now: float) -> List[str]:
        """Hosts whose crash time has passed but whose state-wipe side
        effect has not fired yet; marks them fired (each crash wipes once)."""
        due = []
        for event in self._crashes:
            if not event.fired and event.at_s <= now:
                event.fired = True
                due.append(event.host)
        return due

    def on_message(
        self, direction: str, src: str, dst: str, now: float
    ) -> Optional[FaultDecision]:
        """The plan's verdict for one message (None = leave it alone).

        A drop wins over any delay; otherwise delays accumulate.
        """
        decision: Optional[FaultDecision] = None
        for rule in self._rules:
            if not rule.matches(direction, src, dst):
                continue
            if not rule.fires():
                continue
            if decision is None:
                decision = FaultDecision(label=rule.label)
            if rule.extra_latency_s > 0.0:
                decision.extra_latency_s += rule.extra_latency_s
            else:
                decision.drop = True
        return decision

    # -- reporting ------------------------------------------------------------

    def injection_summary(self) -> Dict[str, int]:
        """Injected-fault counts per rule label (for reports/tests)."""
        summary: Dict[str, int] = {}
        for rule in self._rules:
            summary[rule.label] = summary.get(rule.label, 0) + rule.injected
        for event in self._crashes:
            if event.fired:
                label = f"crash:{event.host}"
                summary[label] = summary.get(label, 0) + 1
        return summary
