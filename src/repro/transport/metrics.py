"""Transmission metrics: who sent how many bytes to whom, and when."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class MessageRecord:
    """One HTTP message observed on a link."""

    src: str
    dst: str
    wire_bytes: int
    kind: str  # "request" | "response"
    phase: str
    operation: str
    sim_time: float


@dataclass(frozen=True)
class BreakerEvent:
    """One circuit-breaker state transition."""

    endpoint: str
    old_state: str
    new_state: str
    sim_time: float


@dataclass
class NetworkMetrics:
    """Accumulates message records plus simulated elapsed time.

    ``simulated_seconds`` sums transfer time (latency + bytes/bandwidth);
    ``processing_seconds`` sums the per-row processing cost the SkyNodes
    charge while scanning — the two halves of the paper's Section 5.3 cost
    model ("processing costs at the individual SkyNodes and transmission
    costs in sending partial results").
    """

    messages: List[MessageRecord] = field(default_factory=list)
    simulated_seconds: float = 0.0
    processing_seconds: float = 0.0
    #: Injected faults by kind ("request-drop", "response-drop",
    #: "latency-spike", "outage", "crash", "crash-drop"); what the
    #: resilience benchmarks report.
    faults: Dict[str, int] = field(default_factory=dict)
    timeouts: int = 0
    retries: int = 0
    backoff_seconds: float = 0.0
    #: Endpoint substitutions: a dead primary (or mid-chain hop) replaced
    #: by a live replica instead of degrading the answer.
    failovers: int = 0
    #: Circuit-breaker state transitions, in recording order.
    breaker_events: List[BreakerEvent] = field(default_factory=list)
    #: Server-side transfers/streams freed without a full drain — an
    #: explicit abort or a sim-clock TTL expiry reclaiming state a crashed
    #: or circuit-opened caller abandoned mid-fetch.
    reclaimed_transfers: int = 0
    #: Checkpoints/streams dropped because the snapshot epoch they were
    #: pinned to fell below the archive's GC floor (see docs/RESILIENCE.md,
    #: epoch lifecycle) — their cached results can never be served again.
    stale_epoch_reaps: int = 0
    #: ``CancelQuery`` operations handled (idempotent repeats included) —
    #: the control-plane cost of eager cancellation.
    cancels: int = 0
    #: Streams/checkpoints/transfers freed *eagerly* by ``CancelQuery``
    #: fan-out instead of lingering until a TTL reap; the payoff eager
    #: cancellation buys over TTL-only reclamation (E22). Disjoint from
    #: ``reclaimed_transfers``, which counts TTL/abort reclamation of
    #: abandoned server state.
    eager_reclaims: int = 0

    def record(self, message: MessageRecord) -> None:
        """Append one message record."""
        self.messages.append(message)

    def record_fault(self, kind: str) -> None:
        """Count one injected fault by kind."""
        self.faults[kind] = self.faults.get(kind, 0) + 1

    def fault_count(self, kind: Optional[str] = None) -> int:
        """Total injected faults, optionally of one kind."""
        if kind is not None:
            return self.faults.get(kind, 0)
        return sum(self.faults.values())

    def record_breaker(
        self, endpoint: str, old_state: str, new_state: str, sim_time: float
    ) -> None:
        """Record one circuit-breaker state transition."""
        self.breaker_events.append(
            BreakerEvent(endpoint, old_state, new_state, sim_time)
        )

    def breaker_transitions(
        self, endpoint: Optional[str] = None
    ) -> List[BreakerEvent]:
        """Breaker transitions, optionally for one endpoint."""
        return [
            event
            for event in self.breaker_events
            if endpoint is None or event.endpoint == endpoint
        ]

    def total_bytes(
        self,
        *,
        phase: Optional[str] = None,
        src: Optional[str] = None,
        dst: Optional[str] = None,
    ) -> int:
        """Sum of wire bytes, optionally filtered."""
        return sum(
            m.wire_bytes
            for m in self.messages
            if (phase is None or m.phase == phase)
            and (src is None or m.src == src)
            and (dst is None or m.dst == dst)
        )

    def message_count(self, *, phase: Optional[str] = None) -> int:
        """Number of messages, optionally filtered by phase."""
        return sum(1 for m in self.messages if phase is None or m.phase == phase)

    def bytes_by_phase(self) -> Dict[str, int]:
        """Total wire bytes per phase label."""
        totals: Dict[str, int] = defaultdict(int)
        for m in self.messages:
            totals[m.phase] += m.wire_bytes
        return dict(totals)

    def bytes_by_link(self) -> Dict[Tuple[str, str], int]:
        """Total wire bytes per directed (src, dst) link."""
        totals: Dict[Tuple[str, str], int] = defaultdict(int)
        for m in self.messages:
            totals[(m.src, m.dst)] += m.wire_bytes
        return dict(totals)

    def reset(self) -> None:
        """Forget all records and zero the accumulators."""
        self.messages.clear()
        self.simulated_seconds = 0.0
        self.processing_seconds = 0.0
        self.faults.clear()
        self.timeouts = 0
        self.retries = 0
        self.backoff_seconds = 0.0
        self.failovers = 0
        self.breaker_events.clear()
        self.reclaimed_transfers = 0
        self.stale_epoch_reaps = 0
        self.cancels = 0
        self.eager_reclaims = 0
