"""Simulated HTTP transport between federation hosts.

The paper's cost model (Section 5.3): federated query execution "incurs
processing costs at the individual SkyNodes and transmission costs in
sending partial results from one SkyNode to the next". This package makes
transmission costs first-class: every SOAP message travels as a rendered
HTTP request/response over a simulated link with latency and bandwidth, a
deterministic clock accumulates transfer time, and a metrics collector
records bytes per link/phase so the ordering experiments can compare plans.
"""

from repro.transport.http import HttpRequest, HttpResponse, soap_request
from repro.transport.metrics import MessageRecord, NetworkMetrics
from repro.transport.network import Link, SimClock, SimulatedNetwork
from repro.transport.chunking import chunk_rowset, split_for_budget

__all__ = [
    "HttpRequest",
    "HttpResponse",
    "soap_request",
    "MessageRecord",
    "NetworkMetrics",
    "Link",
    "SimClock",
    "SimulatedNetwork",
    "chunk_rowset",
    "split_for_budget",
]
