"""Exception hierarchy for the SkyQuery reproduction.

Every layer of the system raises subclasses of :class:`SkyQueryError` so that
callers can distinguish user errors (bad query text, unknown archive) from
infrastructure failures (SOAP faults, transport problems, resource limits).
"""

from __future__ import annotations


class SkyQueryError(Exception):
    """Base class for every error raised by this package."""


class GeometryError(SkyQueryError):
    """Invalid spherical-geometry input (zero vector, bad radius, ...)."""


class HTMError(SkyQueryError):
    """Invalid Hierarchical Triangular Mesh operation (bad depth/id/name)."""


class DatabaseError(SkyQueryError):
    """Base class for relational-engine errors."""


class SchemaError(DatabaseError):
    """Schema violation: unknown table/column, duplicate definition, type mismatch."""


class QueryError(DatabaseError):
    """A query could not be evaluated against the engine."""


class StaleEpochError(QueryError):
    """A query pinned an epoch the engine cannot serve.

    Either the epoch has been garbage-collected (older than the oldest
    pinnable snapshot) or it has not been committed at this archive yet
    (a replica lagging behind an in-doubt 2PC decision).
    """


class SQLSyntaxError(SkyQueryError):
    """The SkyQuery SQL dialect parser rejected the query text."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class ValidationError(SkyQueryError):
    """The parsed query is syntactically valid but semantically inconsistent."""


class ConfigurationError(SkyQueryError):
    """A federation/node configuration knob has an unsupported value."""


class SoapError(SkyQueryError):
    """Base class for SOAP / XML wire-format errors."""


class XMLSyntaxError(SoapError):
    """Malformed XML document."""


class XMLMemoryError(SoapError):
    """The (simulated) XML parser exceeded its memory budget.

    Reproduces the failure mode reported in the paper's Section 6: the
    SkyNode XML parser ran out of memory on SOAP messages of about 10 MB.
    """

    def __init__(self, message: str, document_bytes: int, limit_bytes: int) -> None:
        self.document_bytes = document_bytes
        self.limit_bytes = limit_bytes
        super().__init__(message)


class SoapFaultError(SoapError):
    """A SOAP <Fault> was returned by the remote service."""

    def __init__(self, faultcode: str, faultstring: str, detail: str = "") -> None:
        self.faultcode = faultcode
        self.faultstring = faultstring
        self.detail = detail
        super().__init__(f"{faultcode}: {faultstring}")


class TransportError(SkyQueryError):
    """Simulated-HTTP transport failure (unknown host, link down, ...)."""


class RequestTimeoutError(TransportError):
    """A request or response was lost (or too slow) and the caller timed out.

    Raised by the simulated network after advancing the clock by the full
    timeout — the caller really does wait out its deadline, exactly as a
    blocking HTTP client would.
    """

    def __init__(self, message: str, timeout_s: float = 0.0) -> None:
        self.timeout_s = timeout_s
        super().__init__(message)


class CircuitOpenError(TransportError):
    """A circuit breaker is open: the call fails fast without touching the wire."""

    def __init__(self, message: str, endpoint: str = "", retry_at_s: float = 0.0) -> None:
        self.endpoint = endpoint
        self.retry_at_s = retry_at_s
        super().__init__(message)


class ServiceError(SkyQueryError):
    """A web-service framework error (unknown operation, bad arguments)."""


class RegistrationError(SkyQueryError):
    """A SkyNode could not join the federation."""


class PlanningError(SkyQueryError):
    """The Portal could not build an execution plan for a query."""


class ExecutionError(SkyQueryError):
    """A federated query failed during distributed execution."""


class TransactionError(SkyQueryError):
    """An inter-archive transaction protocol violation or failure."""


class IngestError(SkyQueryError):
    """A live-ingest session protocol violation or failure."""


class SchedulerOverloadError(SkyQueryError):
    """The Portal's run queue is full: admission control shed this query.

    Backpressure, not failure — the caller should retry later (a real
    deployment would surface this as HTTP 503 + Retry-After, which is
    what ``retry_after_s`` models: queue depth ahead of the caller times
    the scheduler's recent per-job service time).
    """

    def __init__(
        self,
        message: str,
        queued: int = 0,
        limit: int = 0,
        retry_after_s: float = 0.0,
    ) -> None:
        self.queued = queued
        self.limit = limit
        self.retry_after_s = retry_after_s
        super().__init__(message)


class DeadlineExceededError(SkyQueryError):
    """A query's end-to-end budget ran out before the work completed.

    Deliberately *not* a :class:`TransportError`: retrying cannot help —
    the budget is spent — so the chain executor's recovery loop must let
    it propagate (and trigger cancellation) instead of re-routing. The
    message names the hop (operation + endpoint, or the dispatching
    service) where the budget expired; crossing a SOAP boundary it rides
    the fault ``detail`` and is re-raised typed on the caller side.
    """


class QueryCancelledError(SkyQueryError):
    """A query was cancelled (drain, explicit cancel) before dispatch."""


class ShardUnavailableError(SkyQueryError):
    """Every endpoint candidate of one spatial shard is unreachable.

    Deliberately *not* a :class:`TransportError`: the coordinating node
    has already tried the shard's whole candidate list (primary and
    replicas), so archive-level failover cannot help — a substitute
    archive endpoint fans out to the *same* dead shard. The chain
    executor must degrade the query with a warning naming the shard
    instead of re-routing. Crossing a SOAP boundary it rides the fault
    ``detail`` and is re-raised typed on the caller side.
    """

    def __init__(self, message: str, shard: str = "") -> None:
        self.shard = shard
        super().__init__(message)
