"""The zone-merge batch cross-match kernel.

The successor papers' algorithm (Nieto-Santisteban et al. 2005; Dobos et
al. 2012): instead of testing every incoming tuple against every archive
object (the broadcast kernel in :mod:`repro.xmatch.kernel` is O(m*n) per
step), bucket the archive's objects into declination zones sorted by RA
once, derive a dec/RA window per tuple from its search radius, and resolve
each window to a few ``searchsorted`` slices over adjacent zones (with RA
wrap-around at 0/360). Only the O(m*k) (tuple, window-member) pairs then
run the exact chi-squared extension.

Candidate generation differs from the broadcast kernel — windows are a
slightly looser superset than the cosine cap test — but that cannot change
the output: the search radius is already a superset bound on everything
that can pass the chi-squared test, and the final filter *is* the
chi-squared test, evaluated by the same :func:`extend_pairs` float64
operation sequence on pairs visited in the same order (tuple-major,
candidates ascending). Survivors are therefore bitwise-identical to both
the scalar reference oracle and the broadcast kernel; the tests verify it.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from repro.xmatch.chi2 import Accumulator
from repro.xmatch.kernel import (
    _COS_SLACK,
    ColumnarObjects,
    best_positions,
    extend_pairs,
    search_radii,
    stack_accumulators,
)
from repro.xmatch.tuples import LocalObject, PartialTuple
from repro.zone.index import (
    DEFAULT_ZONE_HEIGHT_DEG,
    ZoneArrays,
    cap_windows,
    unit_vectors_to_radec,
)


class ZoneObjects(ColumnarObjects):
    """Columnar objects plus their zone index, built once per archive.

    Extends :class:`ColumnarObjects` (same object list and position
    matrix, so the chi-squared pass reads bitwise-identical floats) with
    the sorted ``(zone, ra)`` arrays the window search slices.
    """

    def __init__(
        self,
        objects: Sequence[LocalObject],
        zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG,
    ) -> None:
        super().__init__(objects)
        ra, dec = unit_vectors_to_radec(self.positions)
        self.zone = ZoneArrays.build(ra, dec, zone_height_deg)


def _as_zoned(
    objects: Union[ZoneObjects, Sequence[LocalObject]],
) -> ZoneObjects:
    if isinstance(objects, ZoneObjects):
        return objects
    return ZoneObjects(objects)


def _zone_pairs(
    incoming: Sequence[PartialTuple],
    zoned: ZoneObjects,
    sigma_rad: float,
    threshold: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The chi-squared-accepted (tuple, candidate) pairs of one zone step.

    Returns ``(ti, ci, a_new, avec_new)`` in the canonical order —
    tuple-major, candidate indexes ascending — restricted to pairs that
    pass the chi-squared bound, exactly the pairs the scalar loop accepts.
    """
    a_all, avec_all = stack_accumulators(incoming)
    centers = best_positions(a_all, avec_all, tuples=incoming)
    radii = search_radii(a_all, sigma_rad, threshold)
    # Window from the same effective radius the broadcast kernel's cosine
    # test admits (radius plus the _COS_SLACK boundary slack), so the
    # window superset is never tighter than the cap superset.
    cos_radii = np.cos(np.minimum(radii, np.pi)) - _COS_SLACK
    r_eff = np.arccos(np.clip(cos_radii, -1.0, 1.0))
    ra_c, dec_c = unit_vectors_to_radec(centers)
    dec_lo, dec_hi, halfwidth = cap_windows(ra_c, dec_c, r_eff)
    pair_t, pair_i = zoned.zone.window_pairs(dec_lo, dec_hi, ra_c, halfwidth)
    empty = np.empty(0, dtype=np.int64)
    if pair_t.size == 0:
        return empty, empty, np.empty(0), np.empty((0, 3))
    order = np.lexsort((pair_i, pair_t))
    ti = pair_t[order]
    ci = pair_i[order]
    a_new, avec_new, chi2 = extend_pairs(
        a_all[ti], avec_all[ti], zoned.positions[ci], sigma_rad
    )
    ok = chi2 <= threshold * threshold
    return ti[ok], ci[ok], a_new[ok], avec_new[ok]


def zone_match_step(
    incoming: Sequence[PartialTuple],
    alias: str,
    objects: Union[ZoneObjects, Sequence[LocalObject]],
    sigma_rad: float,
    threshold: float,
) -> List[PartialTuple]:
    """Zone-merge :func:`repro.xmatch.stream.match_step`.

    Same survivors in the same order (tuple-major, candidates in archive
    order) with bitwise-identical accumulators.
    """
    zoned = _as_zoned(objects)
    if not incoming or not len(zoned):
        return []
    ti, ci, a_new, avec_new = _zone_pairs(incoming, zoned, sigma_rad, threshold)
    survivors: List[PartialTuple] = []
    for k in range(ti.size):
        partial = incoming[int(ti[k])]
        obj = zoned.objects[int(ci[k])]
        acc = Accumulator(
            a=float(a_new[k]),
            ax=float(avec_new[k, 0]),
            ay=float(avec_new[k, 1]),
            az=float(avec_new[k, 2]),
        )
        merged = dict(partial.attributes)
        for name, value in obj.attributes.items():
            merged[f"{alias}.{name}"] = value
        survivors.append(
            PartialTuple(
                members=partial.members + ((alias, obj.object_id),),
                acc=acc,
                attributes=merged,
            )
        )
    return survivors


def zone_dropout_step(
    incoming: Sequence[PartialTuple],
    objects: Union[ZoneObjects, Sequence[LocalObject]],
    sigma_rad: float,
    threshold: float,
) -> List[PartialTuple]:
    """Zone-merge :func:`repro.xmatch.stream.dropout_step`.

    A tuple survives the drop-out archive iff none of its candidates
    passes the chi-squared bound; members and cumulative values pass
    through unchanged.
    """
    zoned = _as_zoned(objects)
    if not incoming:
        return []
    if not len(zoned):
        return list(incoming)
    ti, _, _, _ = _zone_pairs(incoming, zoned, sigma_rad, threshold)
    has_match = np.zeros(len(incoming), dtype=bool)
    has_match[ti] = True
    return [
        partial for i, partial in enumerate(incoming) if not has_match[i]
    ]
