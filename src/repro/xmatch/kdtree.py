"""A k-d-tree candidate search for in-memory object sets (optional extra).

The SkyNodes use HTM (their archives' index); the *Portal-side* matchers —
the pull-to-portal baseline and the reference oracle — hold plain object
lists, where the brute-force scan is O(n) per probe. Since an angular
cap on the unit sphere is exactly a Euclidean ball of radius
``2 sin(theta/2)`` (the chord), a 3-D cKDTree answers the same range query
in O(log n + k).

scipy is NOT a dependency of this package: the default matcher is the
numpy batch kernel in :mod:`repro.xmatch.kernel`. This module imports
scipy lazily, so merely importing :mod:`repro.xmatch` works on a clean
install; constructing a :class:`KDTreeSearch` without scipy raises an
ImportError pointing at the ``[kdtree]`` extra.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

import numpy as np

from repro.sphere.distance import chord_for_angle
from repro.sphere.vector import Vec3
from repro.xmatch.stream import CandidateSearch
from repro.xmatch.tuples import LocalObject


def _load_ckdtree():
    """Import scipy's cKDTree on first use, with an actionable error."""
    try:
        from scipy.spatial import cKDTree
    except ImportError as exc:
        raise ImportError(
            "the k-d-tree matcher needs scipy, an optional dependency — "
            "install it with `pip install 'skyquery-repro[kdtree]'` (or "
            "`pip install scipy`). The default vectorized kernel "
            "(repro.xmatch.kernel) needs only numpy."
        ) from exc
    return cKDTree


class KDTreeSearch:
    """A :class:`~repro.xmatch.stream.CandidateSearch` over a fixed set."""

    def __init__(self, objects: Sequence[LocalObject]) -> None:
        ckdtree = _load_ckdtree()
        self._objects: List[LocalObject] = list(objects)
        if self._objects:
            points = np.array([obj.position for obj in self._objects])
            self._tree = ckdtree(points)
        else:
            self._tree = None

    def __call__(self, center: Vec3, radius_rad: float) -> Iterable[LocalObject]:
        if self._tree is None:
            return []
        # Chord distance is monotone in angle, so the Euclidean ball is the
        # exact angular cap — no post-filtering needed.
        chord = chord_for_angle(min(radius_rad, math.pi))
        indexes = self._tree.query_ball_point(np.asarray(center), chord + 1e-12)
        return [self._objects[i] for i in indexes]

    def __len__(self) -> int:
        return len(self._objects)


def kdtree_search(objects: Sequence[LocalObject]) -> CandidateSearch:
    """Build a k-d-tree search (drop-in for ``in_memory_search``)."""
    return KDTreeSearch(objects)
