"""Serializing partial tuples to the SOAP rowset transfer format.

Between adjacent SkyNodes, the partial-result set travels as a rowset: one
row per partial tuple, carrying the member object ids, the four cumulative
values, and any attribute values the final SELECT (or a Portal-evaluated
cross-archive predicate) needs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from typing import Union

from repro.errors import SoapError
from repro.soap.encoding import ColumnarRowSet, WireRowSet
from repro.xmatch.chi2 import Accumulator
from repro.xmatch.tuples import PartialTuple

#: Wire forms a sender can choose for partial-tuple payloads. ``rows`` is
#: the classic ``<r><c>`` rowset; ``columnar`` is the compact column-major
#: ``colset`` (delta-encoded ids, dictionary-encoded strings). Receivers
#: decode both transparently.
WIRE_FORMATS = ("rows", "columnar")

_ACC_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("acc_a", "double"),
    ("acc_ax", "double"),
    ("acc_ay", "double"),
    ("acc_az", "double"),
)


def tuple_schema(
    member_aliases: Sequence[str], attr_columns: Sequence[Tuple[str, str]]
) -> List[Tuple[str, str]]:
    """Rowset schema for tuples whose members are ``member_aliases``.

    ``attr_columns`` are ``("alias.column", typecode)`` pairs for the
    attribute payload.
    """
    columns: List[Tuple[str, str]] = [
        (f"id_{alias}", "int") for alias in member_aliases
    ]
    columns.extend(_ACC_COLUMNS)
    columns.extend(attr_columns)
    return columns


def tuples_to_rowset(
    tuples: Sequence[PartialTuple],
    member_aliases: Sequence[str],
    attr_columns: Sequence[Tuple[str, str]],
) -> WireRowSet:
    """Encode partial tuples as a rowset."""
    rowset = WireRowSet(tuple_schema(member_aliases, attr_columns))
    for partial in tuples:
        members: Dict[str, int] = dict(partial.members)
        missing = [alias for alias in member_aliases if alias not in members]
        if missing or len(partial.members) != len(member_aliases):
            raise SoapError(
                f"tuple members {sorted(members)} do not match schema "
                f"aliases {list(member_aliases)}"
            )
        row: List[Any] = [members[alias] for alias in member_aliases]
        row.extend(
            (partial.acc.a, partial.acc.ax, partial.acc.ay, partial.acc.az)
        )
        for attr_name, _ in attr_columns:
            row.append(partial.attributes.get(attr_name))
        rowset.rows.append(tuple(row))
    return rowset


def tuples_to_payload(
    tuples: Sequence[PartialTuple],
    member_aliases: Sequence[str],
    attr_columns: Sequence[Tuple[str, str]],
    wire_format: str = "rows",
) -> Union[WireRowSet, ColumnarRowSet]:
    """Encode partial tuples in the requested wire form.

    The streaming chain ships its batches ``columnar`` by default: the id
    columns delta-encode tightly and the accumulator doubles dominate what
    is left, cutting envelope bytes (and therefore simulated transfer
    time) without changing the decoded tuples at all.
    """
    if wire_format not in WIRE_FORMATS:
        raise SoapError(
            f"unknown wire format {wire_format!r}; expected one of "
            f"{WIRE_FORMATS}"
        )
    rowset = tuples_to_rowset(tuples, member_aliases, attr_columns)
    if wire_format == "columnar":
        return ColumnarRowSet(rowset)
    return rowset


def rowset_to_tuples(
    rowset: WireRowSet,
    member_aliases: Sequence[str],
    attr_columns: Sequence[Tuple[str, str]],
) -> List[PartialTuple]:
    """Decode a rowset back into partial tuples."""
    expected = tuple_schema(member_aliases, attr_columns)
    if rowset.columns != expected:
        raise SoapError(
            f"rowset schema {rowset.columns} does not match expected {expected}"
        )
    n_members = len(member_aliases)
    tuples: List[PartialTuple] = []
    for row in rowset.rows:
        member_ids = row[:n_members]
        a, ax, ay, az = row[n_members : n_members + 4]
        attrs = {
            name: value
            for (name, _), value in zip(attr_columns, row[n_members + 4 :])
        }
        tuples.append(
            PartialTuple(
                members=tuple(
                    (alias, int(object_id))
                    for alias, object_id in zip(member_aliases, member_ids)
                ),
                acc=Accumulator(a=a, ax=ax, ay=ay, az=az),
                attributes=attrs,
            )
        )
    return tuples
