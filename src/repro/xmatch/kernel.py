"""The numpy-vectorized batch cross-match kernel.

Set-at-a-time evaluation of the Section 5.4 chi-squared recurrence, the
way the follow-up SkyQuery papers (Dobos et al. 2012's parallel
probabilistic join engine; Nieto-Santisteban et al. 2005's zone batch
cross-match) replaced per-tuple matching: stack every incoming tuple's
cumulative values ``(a, ax, ay, az)`` into arrays, run the candidate
search as one broadcasted chord/cosine test against a columnar ``(n, 3)``
position matrix, and evaluate the extended chi-squared for all (tuple,
candidate) pairs in a single pass.

The arithmetic is kept operation-for-operation identical to the scalar
reference in :mod:`repro.xmatch.chi2` / :mod:`repro.xmatch.stream`
(float64 throughout, same association order), so the surviving tuples
carry bitwise-identical accumulators — the scalar path stays available
everywhere as the testing oracle, and the wire traffic does not change.

Only numpy is required; the scipy k-d-tree matcher is an optional extra.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import GeometryError
from repro.xmatch.chi2 import Accumulator
from repro.xmatch.tuples import LocalObject, PartialTuple

#: Tuples per broadcast block: bounds the (block, n) pair matrix so a big
#: incoming batch against a big archive stays within a few MB of scratch.
DEFAULT_BLOCK_SIZE = 1024

#: Slack applied to the cosine of the search radius, mirroring the
#: ``chord + 1e-12`` slack of the k-d-tree matcher: the radius is a
#: superset bound (the chi-squared test re-filters), so erring towards
#: admitting a boundary candidate is always safe.
_COS_SLACK = 1e-12


class ColumnarObjects:
    """A structure-of-arrays view over one archive's objects.

    Keeps the original :class:`LocalObject` list for survivor
    construction plus an ``(n, 3)`` float64 position matrix for the
    broadcasted candidate search. Positions are copied component-wise so
    they stay bitwise equal to the tuples the scalar path reads.
    """

    def __init__(self, objects: Sequence[LocalObject]) -> None:
        self.objects: List[LocalObject] = list(objects)
        n = len(self.objects)
        self.positions = np.empty((n, 3), dtype=np.float64)
        for i, obj in enumerate(self.objects):
            self.positions[i, 0] = obj.position[0]
            self.positions[i, 1] = obj.position[1]
            self.positions[i, 2] = obj.position[2]

    def __len__(self) -> int:
        return len(self.objects)


def _as_columnar(
    objects: Union[ColumnarObjects, Sequence[LocalObject]],
) -> ColumnarObjects:
    if isinstance(objects, ColumnarObjects):
        return objects
    return ColumnarObjects(objects)


def stack_accumulators(
    incoming: Sequence[PartialTuple],
) -> Tuple[np.ndarray, np.ndarray]:
    """Stack tuples' cumulative values into ``a`` (m,) and ``avec`` (m, 3)."""
    m = len(incoming)
    a = np.empty(m, dtype=np.float64)
    avec = np.empty((m, 3), dtype=np.float64)
    for i, partial in enumerate(incoming):
        acc = partial.acc
        a[i] = acc.a
        avec[i, 0] = acc.ax
        avec[i, 1] = acc.ay
        avec[i, 2] = acc.az
    return a, avec


def _offending_tuple(
    bad: np.ndarray, tuples: Optional[Sequence[PartialTuple]]
) -> str:
    """Identify the first offending batch row for a GeometryError message.

    The scalar path fails per tuple, so its errors name the culprit for
    free; the batch path validates whole arrays and would otherwise
    condemn the batch anonymously. Includes the tuple's members when the
    caller can supply them.
    """
    i = int(np.argmax(bad))
    detail = f" (tuple {i} of {bad.size} in the batch"
    if tuples is not None and i < len(tuples):
        detail += f", members {tuples[i].members!r}"
    return detail + ")"


def best_positions(
    a: np.ndarray,
    avec: np.ndarray,
    *,
    tuples: Optional[Sequence[PartialTuple]] = None,
) -> np.ndarray:
    """Row-wise maximum-likelihood positions (unit vectors), ``(m, 3)``.

    Same operations as :meth:`Accumulator.best_position` — component
    squares summed left to right, one sqrt, component-wise division — so
    the centers are bitwise equal to the scalar path's. ``tuples``
    optionally supplies the batch's partial tuples so a degenerate row is
    identified by index and members instead of failing anonymously.
    """
    nonpositive = a <= 0.0
    if np.any(nonpositive):
        raise GeometryError(
            "accumulator has no observations"
            + _offending_tuple(nonpositive, tuples)
        )
    norms = np.sqrt(
        avec[:, 0] * avec[:, 0] + avec[:, 1] * avec[:, 1]
        + avec[:, 2] * avec[:, 2]
    )
    degenerate = norms < 1e-300
    if np.any(degenerate):
        raise GeometryError(
            "cannot normalize a zero vector"
            + _offending_tuple(degenerate, tuples)
        )
    return avec / norms[:, None]


def search_radii(
    a: np.ndarray, sigma_rad: float, threshold: float
) -> np.ndarray:
    """Row-wise safe candidate-search radii (radians).

    The vectorized :meth:`Accumulator.search_radius`: the bound
    ``threshold * (sigma_new + 1/sqrt(a))`` is a superset of everything
    that could pass the chi-squared test.
    """
    return threshold * (sigma_rad + 1.0 / np.sqrt(a))


def extend_pairs(
    a: np.ndarray,
    avec: np.ndarray,
    positions: np.ndarray,
    sigma_rad: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extend aligned (tuple, candidate) pairs with one observation each.

    ``a``/``avec`` hold the pair's tuple accumulator (already gathered to
    pair order), ``positions`` the candidate unit vectors, one row per
    pair. Returns ``(a_new, avec_new, chi2)`` where the arithmetic is the
    exact float64 operation sequence of
    :meth:`Accumulator.with_observation` followed by
    :meth:`Accumulator.chi2` (including the clamp at zero).
    """
    if sigma_rad <= 0.0:
        raise GeometryError(f"sigma must be positive, got {sigma_rad!r}")
    w = 1.0 / (sigma_rad * sigma_rad)
    a_new = a + w
    avec_new = np.empty_like(avec)
    avec_new[:, 0] = avec[:, 0] + w * positions[:, 0]
    avec_new[:, 1] = avec[:, 1] + w * positions[:, 1]
    avec_new[:, 2] = avec[:, 2] + w * positions[:, 2]
    norm_new = np.sqrt(
        avec_new[:, 0] * avec_new[:, 0]
        + avec_new[:, 1] * avec_new[:, 1]
        + avec_new[:, 2] * avec_new[:, 2]
    )
    chi2 = np.maximum(0.0, 2.0 * (a_new - norm_new))
    return a_new, avec_new, chi2


def _candidate_blocks(
    incoming: Sequence[PartialTuple],
    columnar: ColumnarObjects,
    sigma_rad: float,
    threshold: float,
    block_size: int,
) -> Iterator[Tuple[int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Yield per-block accepted pairs.

    Each yield is ``(base, ti, ci, a_new, avec_new)``: the block's first
    tuple index, pair tuple indexes (block-relative), pair candidate
    indexes, and the extended accumulators of the pairs that pass the
    chi-squared test. Pairs come out tuple-major, candidates in archive
    order — the same order the scalar loop visits them.
    """
    if sigma_rad <= 0.0:
        raise GeometryError(f"sigma must be positive, got {sigma_rad!r}")
    a_all, avec_all = stack_accumulators(incoming)
    centers_all = best_positions(a_all, avec_all, tuples=incoming)
    radii = search_radii(a_all, sigma_rad, threshold)
    cos_radii = np.cos(np.minimum(radii, np.pi)) - _COS_SLACK
    threshold_sq = threshold * threshold
    positions = columnar.positions

    for base in range(0, len(incoming), block_size):
        stop = min(base + block_size, len(incoming))
        # Angular cap test as a cosine test: unit vectors, so
        # dot >= cos(radius) iff separation <= radius.
        dots = centers_all[base:stop] @ positions.T
        in_radius = dots >= cos_radii[base:stop, None]
        ti, ci = np.nonzero(in_radius)
        if ti.size == 0:
            continue
        a_new, avec_new, chi2 = extend_pairs(
            a_all[base + ti], avec_all[base + ti], positions[ci], sigma_rad
        )
        ok = chi2 <= threshold_sq
        yield base, ti[ok], ci[ok], a_new[ok], avec_new[ok]


def batch_match_step(
    incoming: Sequence[PartialTuple],
    alias: str,
    objects: Union[ColumnarObjects, Sequence[LocalObject]],
    sigma_rad: float,
    threshold: float,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[PartialTuple]:
    """Vectorized :func:`repro.xmatch.stream.match_step`.

    Returns the same survivors in the same order (tuple-major, candidates
    in archive order) with bitwise-identical accumulators.
    """
    columnar = _as_columnar(objects)
    survivors: List[PartialTuple] = []
    if not incoming or not len(columnar):
        return survivors
    for base, ti, ci, a_new, avec_new in _candidate_blocks(
        incoming, columnar, sigma_rad, threshold, block_size
    ):
        for k in range(ti.size):
            partial = incoming[base + int(ti[k])]
            obj = columnar.objects[int(ci[k])]
            acc = Accumulator(
                a=float(a_new[k]),
                ax=float(avec_new[k, 0]),
                ay=float(avec_new[k, 1]),
                az=float(avec_new[k, 2]),
            )
            merged = dict(partial.attributes)
            for name, value in obj.attributes.items():
                merged[f"{alias}.{name}"] = value
            survivors.append(
                PartialTuple(
                    members=partial.members + ((alias, obj.object_id),),
                    acc=acc,
                    attributes=merged,
                )
            )
    return survivors


def batch_dropout_step(
    incoming: Sequence[PartialTuple],
    objects: Union[ColumnarObjects, Sequence[LocalObject]],
    sigma_rad: float,
    threshold: float,
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[PartialTuple]:
    """Vectorized :func:`repro.xmatch.stream.dropout_step`.

    A tuple survives the drop-out archive iff none of its in-radius
    candidates passes the chi-squared bound; members and cumulative
    values pass through unchanged.
    """
    columnar = _as_columnar(objects)
    if not incoming:
        return []
    if not len(columnar):
        return list(incoming)
    has_match = np.zeros(len(incoming), dtype=bool)
    for base, ti, _, _, _ in _candidate_blocks(
        incoming, columnar, sigma_rad, threshold, block_size
    ):
        has_match[base + ti] = True
    return [
        partial for i, partial in enumerate(incoming) if not has_match[i]
    ]
