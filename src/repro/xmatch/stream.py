"""The per-archive cross-match step.

Section 5.4 of the paper, verbatim logic: archive *i* receives tuples
``R_{i-1}`` with cumulative values; for each it range-searches its own
objects near the current best position, appends each candidate, recomputes
the chi-squared from the updated cumulative values, and forwards only the
tuples whose log likelihood still clears the threshold. Drop-out archives
invert the test: a tuple survives only if *no* local candidate would have
cleared the threshold.

The search itself is abstracted as a :class:`CandidateSearch` callable so
the same algorithm runs against the pure in-memory matcher (tests, property
checks) and the SkyNode's stored procedure (temp table + HTM range scan).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Protocol, Sequence

from repro.sphere.vector import Vec3
from repro.xmatch.tuples import LocalObject, PartialTuple

#: Engines :func:`run_chain` can match with. ``vectorized`` (the default)
#: is the numpy broadcast batch kernel and needs only numpy; ``zone`` is
#: the declination-zone sorted-merge batch kernel (also numpy-only);
#: ``scalar`` is the per-tuple brute-force reference; ``kdtree`` is the
#: per-tuple scipy cKDTree search (optional ``[kdtree]`` extra).
ENGINES = ("vectorized", "zone", "scalar", "kdtree")


class CandidateSearch(Protocol):
    """Range search over one archive's objects.

    Must return every local object within ``radius_rad`` of ``center`` that
    also satisfies the archive's local (non-spatial) predicates. Returning
    a superset is allowed — the chi-squared test re-filters — but missing a
    true candidate loses matches.
    """

    def __call__(self, center: Vec3, radius_rad: float) -> Iterable[LocalObject]:
        ...


def seed_tuples(
    alias: str, objects: Iterable[LocalObject], sigma_rad: float
) -> List[PartialTuple]:
    """Step 1 of the chain: every qualifying local object starts a 1-tuple.

    The paper: "The first archive just needs to send 1-tuples comprising of
    objects that satisfy the other clauses in the query."
    """
    return [PartialTuple.seed(alias, obj, sigma_rad) for obj in objects]


def match_step(
    incoming: Sequence[PartialTuple],
    alias: str,
    search: CandidateSearch,
    sigma_rad: float,
    threshold: float,
) -> List[PartialTuple]:
    """Extend incoming tuples with this mandatory archive's candidates."""
    survivors: List[PartialTuple] = []
    for partial in incoming:
        center = partial.acc.best_position()
        radius = partial.acc.search_radius(sigma_rad, threshold)
        for candidate in search(center, radius):
            extended = partial.extended(alias, candidate, sigma_rad)
            if extended.acc.accepts(threshold):
                survivors.append(extended)
    return survivors


def dropout_step(
    incoming: Sequence[PartialTuple],
    search: CandidateSearch,
    sigma_rad: float,
    threshold: float,
) -> List[PartialTuple]:
    """Filter tuples that DO have a match in a drop-out archive.

    The paper's "exclusive outer join": a tuple survives a ``!A`` archive
    iff appending any of A's objects would fail the chi-squared bound.
    The tuple's members and cumulative values pass through unchanged.
    """
    survivors: List[PartialTuple] = []
    for partial in incoming:
        center = partial.acc.best_position()
        radius = partial.acc.search_radius(sigma_rad, threshold)
        has_match = any(
            partial.acc.with_observation(candidate.position, sigma_rad).chi2()
            <= threshold * threshold
            for candidate in search(center, radius)
        )
        if not has_match:
            survivors.append(partial)
    return survivors


def in_memory_search(
    objects: Sequence[LocalObject],
) -> CandidateSearch:
    """A brute-force CandidateSearch over a list (reference implementation)."""
    from repro.sphere.distance import angular_separation

    def search(center: Vec3, radius_rad: float) -> Iterable[LocalObject]:
        return [
            obj
            for obj in objects
            if angular_separation(center, obj.position) <= radius_rad
        ]

    return search


def run_chain(
    archives: Sequence[tuple[str, Sequence[LocalObject], float, bool]],
    threshold: float,
    *,
    engine: str = "vectorized",
    use_kdtree: Optional[bool] = None,
    batch_size: Optional[int] = None,
) -> List[PartialTuple]:
    """End-to-end matcher over in-memory archives.

    ``archives`` is ordered by *computation* order: each entry is
    ``(alias, objects, sigma_rad, is_dropout)``. Mandatory archives must
    precede dropout archives (a dropout needs a mean position to test
    against); the first entry must be mandatory.

    Used as the oracle the distributed implementation is checked against
    and as the pull-to-portal baseline's matcher. ``engine`` selects the
    matcher: the numpy broadcast batch kernel (``vectorized``, the
    default — no scipy required), the declination-zone sorted-merge batch
    kernel (``zone``, also numpy-only), the per-tuple brute-force scan
    (``scalar``, the reference oracle), or the per-tuple scipy cKDTree
    search (``kdtree``, the optional extra). All four return identical
    match sets; the tests verify it. ``use_kdtree`` is the legacy toggle
    between the two per-tuple engines and overrides ``engine`` when given.

    ``batch_size`` mirrors the pipelined wire protocol in memory: the seed
    tuples are partitioned into batches and the rest of the chain runs per
    batch, with the surviving tuples concatenated in batch order. The
    result is identical to the unbatched run (the tests verify it) — the
    knob exists so the streaming protocol has an in-process oracle.
    """
    if use_kdtree is not None:
        engine = "kdtree" if use_kdtree else "scalar"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown xmatch engine {engine!r}; expected one of {ENGINES}"
        )
    if not archives or archives[0][3]:
        raise ValueError("the chain must start with a mandatory archive")
    alias0, objects0, sigma0, _ = archives[0]
    seeds = seed_tuples(alias0, objects0, sigma0)
    if batch_size is not None:
        from repro.transport.chunking import batch_slices

        out: List[PartialTuple] = []
        for start, stop in batch_slices(len(seeds), batch_size):
            out.extend(
                _chain_rest(seeds[start:stop], archives[1:], threshold, engine)
            )
        return out
    return _chain_rest(seeds, archives[1:], threshold, engine)


def _chain_rest(
    tuples: List[PartialTuple],
    rest: Sequence[tuple[str, Sequence[LocalObject], float, bool]],
    threshold: float,
    engine: str,
) -> List[PartialTuple]:
    """Run every post-seed step of the chain over one tuple set."""
    for alias, objects, sigma_rad, is_dropout in rest:
        if engine == "vectorized":
            from repro.xmatch.kernel import (
                ColumnarObjects,
                batch_dropout_step,
                batch_match_step,
            )

            columnar = ColumnarObjects(objects)
            if is_dropout:
                tuples = batch_dropout_step(
                    tuples, columnar, sigma_rad, threshold
                )
            else:
                tuples = batch_match_step(
                    tuples, alias, columnar, sigma_rad, threshold
                )
            continue
        if engine == "zone":
            from repro.xmatch.zone import (
                ZoneObjects,
                zone_dropout_step,
                zone_match_step,
            )

            zoned = ZoneObjects(objects)
            if is_dropout:
                tuples = zone_dropout_step(tuples, zoned, sigma_rad, threshold)
            else:
                tuples = zone_match_step(
                    tuples, alias, zoned, sigma_rad, threshold
                )
            continue
        if engine == "kdtree":
            from repro.xmatch.kdtree import kdtree_search

            search = kdtree_search(objects)
        else:
            search = in_memory_search(objects)
        if is_dropout:
            tuples = dropout_step(tuples, search, sigma_rad, threshold)
        else:
            tuples = match_step(tuples, alias, search, sigma_rad, threshold)
    return tuples
