"""Cumulative chi-squared accumulators for the cross-match likelihood.

Following Section 5.4 of the paper: for observations ``(x_i, y_i, z_i)``
with per-archive error ``sigma_i``, the log likelihood that they observe
one astronomical body at unit position ``(x, y, z)`` is

    -sum_i [ (x-x_i)^2 + (y-y_i)^2 + (z-z_i)^2 ] / sigma_i^2

Minimizing the chi-squared with a Lagrange unit-norm constraint puts the
best position along ``(ax, ay, az)`` where

    a  = sum_i 1/sigma_i^2          ax = sum_i x_i/sigma_i^2   (etc.)

and the minimized chi-squared works out to ``2 * (a - |(ax, ay, az)|)``
(equivalently, the paper's log likelihood is ``-a + |(ax, ay, az)|``, i.e.
``-chi2/2``). A tuple satisfies ``XMATCH(...) < t`` iff ``chi2 <= t^2``.

Only these four running sums cross the wire between SkyNodes — that is the
whole trick that makes the distributed evaluation cheap.

Numerical note: with sigma in the 0.1-1 arcsecond range the weights are
~1e10-1e12 (radians^-2), while ``a - |avec|`` is O(1), so the subtraction
cancels ~11 significant digits and chi-squared carries an absolute error of
roughly 1e-5..1e-2. That corresponds to a positional error below 1e-4
sigma — far under any survey's measurement noise — and is inherent to the
paper's cumulative-value wire format (the same arithmetic its prototype
performed in SQL Server doubles). Tests therefore compare chi-squared with
absolute tolerance 1e-3, and thresholds should not be chosen at the exact
decision boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.sphere.vector import Vec3, normalize


@dataclass(frozen=True)
class Accumulator:
    """The cumulative values ``(a, ax, ay, az)`` of a partial tuple."""

    a: float = 0.0
    ax: float = 0.0
    ay: float = 0.0
    az: float = 0.0

    @classmethod
    def empty(cls) -> "Accumulator":
        """The accumulator of a zero-length tuple."""
        return cls()

    @classmethod
    def of_observation(cls, v: Vec3, sigma_rad: float) -> "Accumulator":
        """Accumulator of a single observation."""
        return cls.empty().with_observation(v, sigma_rad)

    def with_observation(self, v: Vec3, sigma_rad: float) -> "Accumulator":
        """Extend with one more observation (returns a new accumulator)."""
        if sigma_rad <= 0.0:
            raise GeometryError(f"sigma must be positive, got {sigma_rad!r}")
        w = 1.0 / (sigma_rad * sigma_rad)
        return Accumulator(
            a=self.a + w,
            ax=self.ax + w * v[0],
            ay=self.ay + w * v[1],
            az=self.az + w * v[2],
        )

    @property
    def count_weight(self) -> float:
        """Total statistical weight ``a`` (sum of 1/sigma^2)."""
        return self.a

    @property
    def vector_norm(self) -> float:
        """``|(ax, ay, az)|``."""
        return math.sqrt(self.ax * self.ax + self.ay * self.ay + self.az * self.az)

    def best_position(self) -> Vec3:
        """The maximum-likelihood common position (unit vector)."""
        if self.a <= 0.0:
            raise GeometryError("accumulator has no observations")
        return normalize((self.ax, self.ay, self.az))

    def chi2(self) -> float:
        """Minimized chi-squared, ``2 (a - |avec|)`` (clamped at 0)."""
        return max(0.0, 2.0 * (self.a - self.vector_norm))

    def log_likelihood(self) -> float:
        """The paper's log likelihood at the best position: ``-a + |avec|``."""
        return -self.a + self.vector_norm

    def effective_sigma(self) -> float:
        """Width (radians) of the combined position estimate, ``1/sqrt(a)``."""
        if self.a <= 0.0:
            raise GeometryError("accumulator has no observations")
        return 1.0 / math.sqrt(self.a)

    def accepts(self, threshold_sigmas: float) -> bool:
        """True iff this tuple satisfies ``XMATCH(...) < threshold``."""
        return self.chi2() <= threshold_sigmas * threshold_sigmas

    def search_radius(self, sigma_rad: float, threshold_sigmas: float) -> float:
        """Safe candidate-search radius around the current best position.

        A new observation from an archive with error ``sigma_rad`` can only
        keep the tuple alive if it lies within roughly
        ``threshold * (sigma_new + effective_sigma)`` of the current best
        position; anything farther fails the chi-squared test outright.
        The exact test is still applied to every candidate, so this only
        needs to be a superset bound.
        """
        if self.a <= 0.0:
            # No prior observations: the caller must search the whole AREA.
            return math.pi
        return threshold_sigmas * (sigma_rad + self.effective_sigma())
