"""The probabilistic cross-match algorithm (paper Section 5.4).

The XMATCH clause is a probabilistic spatial join: an N-tuple of objects,
one per mandatory archive, matches when the chi-squared distance of the
observations from their best-fit common position is within the threshold.
The computation is *incremental* — each archive extends (i-1)-tuples with
its own candidate objects using only four cumulative values
``(a, ax, ay, az)`` — and *symmetric*: any archive order yields the same
final match set, which is what lets the Portal pick the order purely for
network-cost reasons.
"""

from repro.xmatch.chi2 import Accumulator
from repro.xmatch.tuples import LocalObject, PartialTuple
from repro.xmatch.kdtree import KDTreeSearch, kdtree_search
from repro.xmatch.kernel import (
    ColumnarObjects,
    batch_dropout_step,
    batch_match_step,
)
from repro.xmatch.stream import (
    CandidateSearch,
    ENGINES,
    dropout_step,
    in_memory_search,
    match_step,
    run_chain,
    seed_tuples,
)

__all__ = [
    "Accumulator",
    "LocalObject",
    "PartialTuple",
    "CandidateSearch",
    "ColumnarObjects",
    "ENGINES",
    "KDTreeSearch",
    "kdtree_search",
    "batch_dropout_step",
    "batch_match_step",
    "dropout_step",
    "in_memory_search",
    "match_step",
    "run_chain",
    "seed_tuples",
]
