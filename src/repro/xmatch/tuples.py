"""Partial tuples: what flows along the SkyNode chain."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Tuple

from repro.sphere.vector import Vec3
from repro.xmatch.chi2 import Accumulator


@dataclass(frozen=True)
class LocalObject:
    """One archive's observation offered to the matcher."""

    object_id: int
    position: Vec3
    attributes: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PartialTuple:
    """An i-tuple ``R_i = (o_1, ..., o_i)`` plus its cumulative values.

    ``members`` maps archive alias -> object id for the archives joined so
    far; ``attributes`` carries the attribute values (keyed
    ``alias.column``) needed for the SELECT list and for cross-archive
    predicates evaluated at the Portal; ``acc`` is the chi-squared
    accumulator — the only spatial state the next archive needs.
    """

    members: Tuple[Tuple[str, int], ...]
    acc: Accumulator
    attributes: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def seed(cls, alias: str, obj: LocalObject, sigma_rad: float) -> "PartialTuple":
        """A 1-tuple from the first archive in the chain."""
        return cls(
            members=((alias, obj.object_id),),
            acc=Accumulator.of_observation(obj.position, sigma_rad),
            attributes={
                f"{alias}.{name}": value for name, value in obj.attributes.items()
            },
        )

    def extended(
        self, alias: str, obj: LocalObject, sigma_rad: float
    ) -> "PartialTuple":
        """The (i+1)-tuple with one more archive's observation appended."""
        merged = dict(self.attributes)
        for name, value in obj.attributes.items():
            merged[f"{alias}.{name}"] = value
        return PartialTuple(
            members=self.members + ((alias, obj.object_id),),
            acc=self.acc.with_observation(obj.position, sigma_rad),
            attributes=merged,
        )

    def member_id(self, alias: str) -> int:
        """The object id contributed by one archive (KeyError if absent)."""
        for member_alias, object_id in self.members:
            if member_alias == alias:
                return object_id
        raise KeyError(f"tuple has no member from archive {alias!r}")

    @property
    def length(self) -> int:
        """Number of archives joined so far."""
        return len(self.members)

    def with_attributes(self, extra: Dict[str, Any]) -> "PartialTuple":
        """A copy with extra attribute values merged in."""
        merged = dict(self.attributes)
        merged.update(extra)
        return replace(self, attributes=merged)
