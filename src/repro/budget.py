"""Query-lifetime budgets: the deadline that travels with the query.

A :class:`QueryBudget` is an *absolute* deadline on the simulated clock
plus the portal-minted query id, propagated hop to hop in the
``<sq:QueryBudget>`` SOAP header (a sibling of ``<sq:TraceContext>``).
Every layer reads the budget through a scope stack rather than plumbing
it as an extra parameter:

* the caller side (:class:`~repro.services.client.ServiceProxy`) stamps
  the active budget into outgoing envelopes and clamps its per-call
  retry deadline to the remaining budget;
* the server side (:meth:`~repro.services.framework.WebService.handle_soap`)
  parses the header and re-scopes it for the handler, so chain
  forwarding and batch pulls made *from inside* a handler inherit the
  caller's budget automatically — exactly how the TraceContext header
  threads one span tree through the federation.

``use_budget(None)`` deliberately *masks* any outer budget: a handler
dispatching an unbudgeted request models a separate process that never
saw the header, and cleanup RPCs (CancelQuery/AbortStream/AbortTransfer)
run unbudgeted so an expired deadline can never block its own cleanup.

The server side also needs "now" without owning a clock; the network
pushes a request-scoped clock provider around each handler invocation
(:func:`use_request_clock` / :func:`request_now`), mirroring
``use_tracer``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional


@dataclass(frozen=True)
class QueryBudget:
    """One query's absolute sim-clock deadline and identity."""

    deadline_s: float
    query_id: str = ""

    def remaining_s(self, now: float) -> float:
        """Seconds of budget left at sim-time ``now`` (negative if spent)."""
        return self.deadline_s - now

    def expired(self, now: float) -> bool:
        """True once the sim clock has reached the deadline."""
        return now >= self.deadline_s


#: Operations that free state for a dead query. Both the proxy and the
#: dispatcher exempt them from budget enforcement: cancellation issued
#: *because* a deadline expired must never be blocked by that same
#: expired deadline, or cleanup could strand the very state it frees.
CLEANUP_OPERATIONS = frozenset({"CancelQuery", "AbortStream", "AbortTransfer"})

_ACTIVE_BUDGETS: List[Optional[QueryBudget]] = []


def active_budget() -> Optional[QueryBudget]:
    """The budget scoped around the current call, if any."""
    return _ACTIVE_BUDGETS[-1] if _ACTIVE_BUDGETS else None


@contextmanager
def use_budget(budget: Optional[QueryBudget]) -> Iterator[None]:
    """Scope a budget (or None, masking any outer one) for nested calls."""
    _ACTIVE_BUDGETS.append(budget)
    try:
        yield
    finally:
        _ACTIVE_BUDGETS.pop()


_ACTIVE_CLOCKS: List[Callable[[], float]] = []


def request_now() -> Optional[float]:
    """Sim-time of the network currently delivering a request, if any."""
    return _ACTIVE_CLOCKS[-1]() if _ACTIVE_CLOCKS else None


@contextmanager
def use_request_clock(clock_fn: Callable[[], float]) -> Iterator[None]:
    """Scope a clock provider as the active one for nested handlers."""
    _ACTIVE_CLOCKS.append(clock_fn)
    try:
        yield
    finally:
        _ACTIVE_CLOCKS.pop()
