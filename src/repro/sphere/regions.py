"""Spherical regions used by the AREA clause and the HTM cover algorithm.

Two region shapes are provided:

* :class:`Cap` — a spherical cap ("circle on the sky"), the paper's AREA
  clause shape: a center (ra, dec in degrees) and an angular radius.
* :class:`ConvexPolygon` — intersection of half-spaces through the origin,
  supporting the paper's proposed extension to polygonal AREA clauses
  (Section 6, "The AREA clause can also be extended to specify arbitrary
  polygons").

Both implement the :class:`Region` interface needed by the HTM cover:
point containment plus a conservative trixel classification.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import Sequence, Tuple

from repro.errors import GeometryError
from repro.sphere.coords import radec_to_vector
from repro.sphere.distance import angular_separation
from repro.sphere.vector import Vec3, add, cross, dot, normalize, scale
from repro.units import arcsec_to_rad


class TrixelRelation(Enum):
    """How a spherical triangle relates to a region."""

    INSIDE = "inside"
    PARTIAL = "partial"
    OUTSIDE = "outside"


class Region(ABC):
    """A region on the unit sphere."""

    @abstractmethod
    def contains(self, v: Vec3) -> bool:
        """True if the unit vector ``v`` lies inside the region."""

    @abstractmethod
    def classify_triangle(self, corners: Sequence[Vec3]) -> TrixelRelation:
        """Classify a spherical triangle against the region.

        The classification must be *conservative*: INSIDE and OUTSIDE must be
        exact, anything uncertain must be reported PARTIAL. The HTM cover
        relies on this to produce a superset of matching trixels whose
        PARTIAL members are then filtered point-by-point.
        """

    @abstractmethod
    def bounding_cap(self) -> "Cap":
        """A cap that contains the whole region (used for quick rejection)."""


@dataclass(frozen=True)
class Cap(Region):
    """Spherical cap: all points within ``radius_rad`` of ``center``."""

    center: Vec3
    radius_rad: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.radius_rad <= math.pi:
            raise GeometryError(
                f"cap radius {self.radius_rad!r} rad outside [0, pi]"
            )
        object.__setattr__(self, "center", normalize(self.center))

    @classmethod
    def from_radec(cls, ra_deg: float, dec_deg: float, radius_arcsec: float) -> "Cap":
        """Build a cap from the paper's AREA(ra, dec, radius) convention.

        The AREA radius is given in arcseconds, matching the sample query
        AREA(185.0, -0.5, 4.5) whose radius the paper describes as
        "4.5 arc seconds".
        """
        if radius_arcsec < 0:
            raise GeometryError(f"negative AREA radius {radius_arcsec!r}")
        return cls(radec_to_vector(ra_deg, dec_deg), arcsec_to_rad(radius_arcsec))

    @property
    def cos_radius(self) -> float:
        """Cosine of the angular radius (containment threshold)."""
        return math.cos(self.radius_rad)

    def contains(self, v: Vec3) -> bool:
        return dot(self.center, v) >= self.cos_radius - 1e-15

    def classify_triangle(self, corners: Sequence[Vec3]) -> TrixelRelation:
        inside = [self.contains(c) for c in corners]
        if all(inside):
            # All corners inside a cap means the whole (small) triangle is
            # inside only if the cap is convex w.r.t. the triangle, which
            # holds for caps with radius <= pi/2; larger caps are handled
            # conservatively.
            if self.radius_rad <= math.pi / 2.0:
                return TrixelRelation.INSIDE
            return TrixelRelation.PARTIAL
        if any(inside):
            return TrixelRelation.PARTIAL
        # No corner inside: the cap may still poke through an edge or lie
        # strictly inside the triangle. Check edge distances and whether the
        # cap center is inside the triangle.
        if self._center_in_triangle(corners) or self._intersects_any_edge(corners):
            return TrixelRelation.PARTIAL
        return TrixelRelation.OUTSIDE

    def bounding_cap(self) -> "Cap":
        return self

    def _center_in_triangle(self, corners: Sequence[Vec3]) -> bool:
        v0, v1, v2 = corners
        return (
            dot(cross(v0, v1), self.center) >= -1e-15
            and dot(cross(v1, v2), self.center) >= -1e-15
            and dot(cross(v2, v0), self.center) >= -1e-15
        )

    def _intersects_any_edge(self, corners: Sequence[Vec3]) -> bool:
        v0, v1, v2 = corners
        for a, b in ((v0, v1), (v1, v2), (v2, v0)):
            if self._intersects_edge(a, b):
                return True
        return False

    def _intersects_edge(self, a: Vec3, b: Vec3) -> bool:
        """True if the cap boundary/interior meets the great-circle arc a-b."""
        # Distance from cap center to the great circle through a, b.
        try:
            plane_normal = normalize(cross(a, b))
        except GeometryError:
            return False  # degenerate edge
        sin_dist = dot(plane_normal, self.center)
        if abs(sin_dist) > math.sin(min(self.radius_rad, math.pi / 2.0)):
            return False
        # Closest point on the great circle to the cap center.
        foot = sub_projection(self.center, plane_normal)
        try:
            foot = normalize(foot)
        except GeometryError:
            return False
        # The closest point must lie on the arc segment between a and b.
        return _on_arc(foot, a, b) and self.contains(foot)


def sub_projection(v: Vec3, unit_normal: Vec3) -> Vec3:
    """Project ``v`` onto the plane with the given unit normal."""
    return add(v, scale(unit_normal, -dot(v, unit_normal)))


def _on_arc(p: Vec3, a: Vec3, b: Vec3) -> bool:
    """True if unit vector ``p`` on the great circle of a,b lies between them."""
    ab = angular_separation(a, b)
    return (
        angular_separation(a, p) <= ab + 1e-12
        and angular_separation(p, b) <= ab + 1e-12
    )


class ConvexPolygon(Region):
    """Convex spherical polygon given by vertices in counter-clockwise order.

    Interior = intersection of the half-spaces defined by consecutive vertex
    pairs. Implements the polygon extension the paper lists as future work.
    """

    def __init__(self, vertices: Sequence[Vec3]) -> None:
        if len(vertices) < 3:
            raise GeometryError("a spherical polygon needs at least 3 vertices")
        self.vertices: Tuple[Vec3, ...] = tuple(normalize(v) for v in vertices)
        self._edges: Tuple[Vec3, ...] = tuple(
            normalize(cross(self.vertices[i], self.vertices[(i + 1) % len(self.vertices)]))
            for i in range(len(self.vertices))
        )
        # Verify convexity / orientation: every vertex must be on the
        # non-negative side of every edge plane.
        for v in self.vertices:
            for e in self._edges:
                if dot(e, v) < -1e-9:
                    raise GeometryError(
                        "polygon vertices are not in counter-clockwise convex order"
                    )

    @classmethod
    def from_radec(cls, points_deg: Sequence[Tuple[float, float]]) -> "ConvexPolygon":
        """Build from (ra, dec) pairs in degrees."""
        return cls([radec_to_vector(ra, dec) for ra, dec in points_deg])

    def contains(self, v: Vec3) -> bool:
        return all(dot(e, v) >= -1e-15 for e in self._edges)

    def classify_triangle(self, corners: Sequence[Vec3]) -> TrixelRelation:
        inside = [self.contains(c) for c in corners]
        if all(inside):
            return TrixelRelation.INSIDE
        # Conservative: unless the triangle is clearly disjoint from the
        # polygon's bounding cap, call it PARTIAL.
        if any(inside):
            return TrixelRelation.PARTIAL
        bound = self.bounding_cap()
        if bound.classify_triangle(corners) is TrixelRelation.OUTSIDE:
            return TrixelRelation.OUTSIDE
        return TrixelRelation.PARTIAL

    def bounding_cap(self) -> Cap:
        centroid = normalize(
            (
                sum(v[0] for v in self.vertices),
                sum(v[1] for v in self.vertices),
                sum(v[2] for v in self.vertices),
            )
        )
        radius = max(angular_separation(centroid, v) for v in self.vertices)
        return Cap(centroid, min(math.pi, radius + 1e-12))
