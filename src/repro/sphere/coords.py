"""Conversions between equatorial coordinates and unit vectors."""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import GeometryError
from repro.sphere.vector import Vec3
from repro.units import deg_to_rad, normalize_ra_deg, rad_to_deg


def radec_to_vector(ra_deg: float, dec_deg: float) -> Vec3:
    """Convert (right ascension, declination) in degrees to a unit vector."""
    if not -90.0 <= dec_deg <= 90.0:
        raise GeometryError(f"declination {dec_deg!r} outside [-90, 90] degrees")
    ra = deg_to_rad(normalize_ra_deg(ra_deg))
    dec = deg_to_rad(dec_deg)
    cos_dec = math.cos(dec)
    return (cos_dec * math.cos(ra), cos_dec * math.sin(ra), math.sin(dec))


def vector_to_radec(v: Vec3) -> Tuple[float, float]:
    """Convert a (not necessarily unit) vector to (ra, dec) in degrees.

    RA is normalized into [0, 360); dec into [-90, 90].
    """
    x, y, z = v
    length = math.sqrt(x * x + y * y + z * z)
    if length < 1e-300:
        raise GeometryError("cannot convert a zero vector to coordinates")
    dec = math.asin(max(-1.0, min(1.0, z / length)))
    ra = math.atan2(y, x)
    return normalize_ra_deg(rad_to_deg(ra)), rad_to_deg(dec)
