"""Spherical geometry substrate.

Celestial positions are represented as unit vectors in a right-handed
Cartesian frame (the usual equatorial convention):

    x = cos(dec) * cos(ra)
    y = cos(dec) * sin(ra)
    z = sin(dec)

This subpackage provides vector arithmetic, coordinate conversions, angular
separations, spherical regions (caps/circles and convex polygons) used by the
AREA clause and the HTM index, and seeded random sampling used by the
synthetic sky-survey workload generator.
"""

from repro.sphere.vector import (
    Vec3,
    add,
    cross,
    dot,
    norm,
    normalize,
    scale,
    sub,
)
from repro.sphere.coords import radec_to_vector, vector_to_radec
from repro.sphere.distance import angular_separation, separation_arcsec
from repro.sphere.regions import Cap, ConvexPolygon, Region
from repro.sphere.random import random_in_cap, random_on_sphere

__all__ = [
    "Vec3",
    "add",
    "cross",
    "dot",
    "norm",
    "normalize",
    "scale",
    "sub",
    "radec_to_vector",
    "vector_to_radec",
    "angular_separation",
    "separation_arcsec",
    "Cap",
    "ConvexPolygon",
    "Region",
    "random_in_cap",
    "random_on_sphere",
]
