"""Angular separations between positions on the unit sphere."""

from __future__ import annotations

import math

from repro.sphere.vector import Vec3, cross, dot, norm
from repro.units import rad_to_arcsec


def angular_separation(a: Vec3, b: Vec3) -> float:
    """Angle between two unit vectors, in radians.

    Uses ``atan2(|a x b|, a . b)`` which is numerically accurate for both
    tiny and near-pi separations (unlike plain ``acos``).
    """
    return math.atan2(norm(cross(a, b)), dot(a, b))


def separation_arcsec(a: Vec3, b: Vec3) -> float:
    """Angle between two unit vectors, in arcseconds."""
    return rad_to_arcsec(angular_separation(a, b))


def chord_for_angle(theta_rad: float) -> float:
    """Euclidean chord length corresponding to an angular radius.

    Useful for distance tests: ``|a-b| <= chord_for_angle(t)`` iff the
    angular separation of unit vectors a, b is at most ``t``.
    """
    return 2.0 * math.sin(theta_rad / 2.0)
