"""Seeded random sampling on the sphere, used by the synthetic sky generator."""

from __future__ import annotations

import math
import random
from typing import List

from repro.sphere.coords import radec_to_vector
from repro.sphere.vector import Vec3, add, cross, normalize, scale


def random_on_sphere(rng: random.Random) -> Vec3:
    """Uniformly distributed unit vector."""
    z = rng.uniform(-1.0, 1.0)
    phi = rng.uniform(0.0, 2.0 * math.pi)
    r = math.sqrt(max(0.0, 1.0 - z * z))
    return (r * math.cos(phi), r * math.sin(phi), z)


def random_in_cap(rng: random.Random, center: Vec3, radius_rad: float) -> Vec3:
    """Uniformly distributed unit vector within a spherical cap.

    Uniform in area: cos(theta) is uniform on [cos(radius), 1].
    """
    center = normalize(center)
    cos_theta = rng.uniform(math.cos(radius_rad), 1.0)
    sin_theta = math.sqrt(max(0.0, 1.0 - cos_theta * cos_theta))
    phi = rng.uniform(0.0, 2.0 * math.pi)
    east, north = tangent_basis(center)
    offset = add(
        scale(east, sin_theta * math.cos(phi)),
        scale(north, sin_theta * math.sin(phi)),
    )
    return normalize(add(scale(center, cos_theta), offset))


def perturb_gaussian(rng: random.Random, v: Vec3, sigma_rad: float) -> Vec3:
    """Scatter a position by a circular Gaussian error of width ``sigma_rad``.

    This is the paper's measurement model: the measured position is a random
    variable distributed normally around the true position with a circular
    standard deviation that depends on the survey's instruments.
    """
    if sigma_rad <= 0.0:
        return normalize(v)
    east, north = tangent_basis(v)
    dx = rng.gauss(0.0, sigma_rad)
    dy = rng.gauss(0.0, sigma_rad)
    return normalize(add(v, add(scale(east, dx), scale(north, dy))))


def tangent_basis(v: Vec3) -> tuple[Vec3, Vec3]:
    """Two orthonormal vectors spanning the tangent plane at unit vector ``v``."""
    v = normalize(v)
    pole: Vec3 = (0.0, 0.0, 1.0)
    if abs(v[2]) > 0.999999:
        pole = (1.0, 0.0, 0.0)
    east = normalize(cross(pole, v))
    north = cross(v, east)
    return east, north


def grid_in_cap(center_ra: float, center_dec: float, radius_arcsec: float,
                count: int, seed: int) -> List[Vec3]:
    """Deterministic pseudo-random positions in a cap (convenience helper)."""
    from repro.units import arcsec_to_rad

    rng = random.Random(seed)
    center = radec_to_vector(center_ra, center_dec)
    return [
        random_in_cap(rng, center, arcsec_to_rad(radius_arcsec))
        for _ in range(count)
    ]
