"""Minimal 3-vector arithmetic on plain tuples.

The hot paths of the cross-match algorithm and the HTM index work on
individual positions, where tuple arithmetic is faster and simpler than
creating numpy arrays per object. Bulk operations (survey generation) use
numpy directly in :mod:`repro.workloads.skysim`.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.errors import GeometryError

Vec3 = Tuple[float, float, float]


def add(a: Vec3, b: Vec3) -> Vec3:
    """Component-wise sum."""
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def sub(a: Vec3, b: Vec3) -> Vec3:
    """Component-wise difference ``a - b``."""
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def scale(a: Vec3, s: float) -> Vec3:
    """Multiply every component by ``s``."""
    return (a[0] * s, a[1] * s, a[2] * s)


def dot(a: Vec3, b: Vec3) -> float:
    """Inner product."""
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def cross(a: Vec3, b: Vec3) -> Vec3:
    """Cross product ``a x b``."""
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def norm(a: Vec3) -> float:
    """Euclidean length."""
    return math.sqrt(dot(a, a))


def normalize(a: Vec3) -> Vec3:
    """Return ``a`` scaled to unit length.

    Raises :class:`~repro.errors.GeometryError` for (near-)zero vectors.
    """
    length = norm(a)
    if length < 1e-300:
        raise GeometryError("cannot normalize a zero vector")
    return (a[0] / length, a[1] / length, a[2] / length)


def midpoint(a: Vec3, b: Vec3) -> Vec3:
    """Unit vector halfway along the great circle between ``a`` and ``b``."""
    return normalize(add(a, b))
