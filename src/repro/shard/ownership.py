"""Shard ownership models, partition planning, and pruning predicates.

An *ownership* describes which slice of the sky one shard holds. Two
models are supported, mirroring the two spatial access paths of the
engine:

* **zone-range** — an inclusive range of declination-zone ids (the zone
  engine's shard key, after Nieto-Santisteban et al.): shard rows satisfy
  ``zone_lo <= zone_of(dec) <= zone_hi``.
* **HTM trixel-prefix** — an inclusive interval of depth-``htm_depth``
  HTM ids whose cuts are aligned to coarse-trixel starts: shard rows
  satisfy ``id_lo <= htm_id <= id_hi``.

Pruning is *conservative by construction*: contacting an extra shard is
always harmless — the shard's own spatial/zone index simply touches zero
rows, contributing nothing to the gathered rows or the summed node stats
— whereas dropping a shard that owns even one cover-window row would
corrupt both. Every predicate here therefore rounds outward:

* Seed hops run a cover-based spatial probe whose ``rows_examined``
  counts every row in a *partial* boundary trixel, including rows whose
  declination lies outside the search cap's dec window. Zone-range
  pruning for a seed hop must pad the cap window by a trixel-diameter
  bound (:func:`trixel_pad_deg`) so that shards owning only such
  boundary rows are still contacted. HTM-range pruning intersects the
  shard interval with the cover's candidate ranges — exact, no pad.
* Match hops count only rows *inside* the padded search cap (the kernels
  apply the cosine filter before touching stats), so per-tuple zone
  pruning needs just the effective search radius plus float slack.
  HTM-range ownership has no cheap per-tuple test, so match hops
  broadcast tuples to every HTM shard (a documented losing regime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, PlanningError
from repro.htm.cover import cover
from repro.htm.ranges import HTMRanges
from repro.sql.area import region_for
from repro.sql.ast import AreaClause, AreaLike
from repro.zone.index import DEFAULT_ZONE_HEIGHT_DEG, zone_count, zone_of

#: Shard-key names accepted by ``FederationConfig(shard_key=...)``.
ZONE_KEY = "zone"
HTM_KEY = "htm"
SHARD_KEYS = (ZONE_KEY, HTM_KEY)

#: Float slack (degrees) added to match-hop dec windows: covers the
#: rounding of the wire round-trip and of ``r_eff`` back-conversion,
#: both orders of magnitude below this.
_MATCH_PAD_DEG = 1e-6


def trixel_pad_deg(htm_depth: int) -> float:
    """Conservative bound (degrees) on the diameter of a depth-``d`` trixel.

    A root trixel (an octant) has vertex separation 90°; each subdivision
    at most halves edge lengths, and the diameter is at most two edge
    lengths away from any interior point — ``720 / 2**d`` over-covers all
    of that comfortably. Used to pad zone-range pruning windows so that
    rows in *partial* boundary trixels (counted by the engine's spatial
    probe even when their dec lies outside the cap window) never cause a
    shard to be pruned away.
    """
    if htm_depth < 0:
        raise ConfigurationError(f"htm_depth must be >= 0, got {htm_depth}")
    return min(180.0, 720.0 / (1 << htm_depth))


@dataclass(frozen=True)
class ZoneRangeOwnership:
    """Inclusive declination-zone id range ``[zone_lo, zone_hi]``.

    ``zone_height_deg`` fixes the zone grid the ids refer to;
    ``htm_depth`` records the depth of the table's spatial index so that
    seed-hop pruning can apply the matching :func:`trixel_pad_deg`.
    An inverted range (``zone_lo > zone_hi``) is a legal *empty* shard.
    """

    zone_lo: int
    zone_hi: int
    zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG
    htm_depth: int = 0

    @property
    def empty(self) -> bool:
        return self.zone_lo > self.zone_hi

    def owns(self, dec_deg: float, htm_id: int) -> bool:
        """True if a row at ``dec_deg`` belongs to this shard."""
        del htm_id
        return self.zone_lo <= zone_of(dec_deg, self.zone_height_deg) <= self.zone_hi

    def dec_interval(self) -> Tuple[float, float]:
        """The closed declination interval ``[lo, hi]`` the range spans.

        The last zone is clamped outward to +90 (``zone_of`` clamps the
        pole into it), the first down to -90.
        """
        lo = self.zone_lo * self.zone_height_deg - 90.0
        hi = (self.zone_hi + 1) * self.zone_height_deg - 90.0
        return max(lo, -90.0), min(hi, 90.0)

    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": ZONE_KEY,
            "zone_lo": self.zone_lo,
            "zone_hi": self.zone_hi,
            "zone_height_deg": self.zone_height_deg,
            "htm_depth": self.htm_depth,
        }


@dataclass(frozen=True)
class HTMRangeOwnership:
    """Inclusive depth-``htm_depth`` HTM id interval ``[id_lo, id_hi]``.

    An inverted interval (``id_lo > id_hi``) is a legal *empty* shard.
    """

    id_lo: int
    id_hi: int
    htm_depth: int

    @property
    def empty(self) -> bool:
        return self.id_lo > self.id_hi

    def owns(self, dec_deg: float, htm_id: int) -> bool:
        """True if a row whose position hashes to ``htm_id`` belongs here."""
        del dec_deg
        return self.id_lo <= htm_id <= self.id_hi

    def to_wire(self) -> Dict[str, Any]:
        return {
            "kind": HTM_KEY,
            "id_lo": self.id_lo,
            "id_hi": self.id_hi,
            "htm_depth": self.htm_depth,
        }


Ownership = Union[ZoneRangeOwnership, HTMRangeOwnership]


def ownership_from_wire(data: Dict[str, Any]) -> Ownership:
    """Decode one ownership wire struct (see the ``to_wire`` methods)."""
    kind = data.get("kind")
    if kind == ZONE_KEY:
        return ZoneRangeOwnership(
            zone_lo=int(data["zone_lo"]),
            zone_hi=int(data["zone_hi"]),
            zone_height_deg=float(data["zone_height_deg"]),
            htm_depth=int(data["htm_depth"]),
        )
    if kind == HTM_KEY:
        return HTMRangeOwnership(
            id_lo=int(data["id_lo"]),
            id_hi=int(data["id_hi"]),
            htm_depth=int(data["htm_depth"]),
        )
    raise PlanningError(f"unknown shard ownership kind {kind!r}")


def _circle_of(area: Optional[AreaLike]) -> Optional[AreaClause]:
    return area if isinstance(area, AreaClause) else None


def _dec_windows_overlap(
    lo_a: float, hi_a: float, lo_b: float, hi_b: float
) -> bool:
    return lo_a <= hi_b and lo_b <= hi_a


def prune_members(members: Sequence[Any], area: Optional[AreaLike]) -> List[Any]:
    """The shard members a seed hop (or count-star probe) must contact.

    ``members`` is any sequence of objects with an ``ownership``
    attribute (typically :class:`~repro.shard.topology.ShardMember`).
    With no AREA the query is a full scan and every non-empty shard is
    kept. With a circular AREA, zone shards are kept when their dec
    interval overlaps the cap window padded by :func:`trixel_pad_deg`
    (polygon AREAs keep all zone shards — conservative, still exact).
    HTM shards are kept when their id interval overlaps any candidate
    cover range — exact for either AREA shape.
    """
    if not members:
        return []
    kept: List[Any] = []
    circle = _circle_of(area)
    region = region_for(area) if area is not None else None
    covers: Dict[int, HTMRanges] = {}
    for member in members:
        own = member.ownership
        if own.empty:
            continue
        if area is None:
            kept.append(member)
            continue
        if isinstance(own, HTMRangeOwnership):
            ranges = covers.get(own.htm_depth)
            if ranges is None:
                ranges = cover(region, own.htm_depth).all_ranges()
                covers[own.htm_depth] = ranges
            if any(lo <= own.id_hi and own.id_lo <= hi for lo, hi in ranges):
                kept.append(member)
            continue
        if circle is None:
            # Polygon AREA: no cheap dec bound — keep every zone shard.
            kept.append(member)
            continue
        radius_deg = circle.radius_arcsec / 3600.0
        pad = trixel_pad_deg(own.htm_depth) + _MATCH_PAD_DEG
        win_lo = circle.dec_deg - radius_deg - pad
        win_hi = circle.dec_deg + radius_deg + pad
        dec_lo, dec_hi = own.dec_interval()
        if _dec_windows_overlap(dec_lo, dec_hi, win_lo, win_hi):
            kept.append(member)
    return kept


def members_for_tuple(
    members: Sequence[Any], dec_c_deg: float, r_eff_deg: float
) -> List[Any]:
    """The shard members one match-hop tuple must be shipped to.

    Match hops count only rows inside the tuple's padded search cap, so
    zone shards outside ``dec_c ± r_eff`` (plus float slack) contribute
    nothing and are skipped. HTM shards are always kept: trixel-prefix
    ownership has no cheap per-tuple test, so tuples broadcast.
    """
    kept: List[Any] = []
    win_lo = dec_c_deg - r_eff_deg - _MATCH_PAD_DEG
    win_hi = dec_c_deg + r_eff_deg + _MATCH_PAD_DEG
    for member in members:
        own = member.ownership
        if own.empty:
            continue
        if isinstance(own, ZoneRangeOwnership):
            dec_lo, dec_hi = own.dec_interval()
            if not _dec_windows_overlap(dec_lo, dec_hi, win_lo, win_hi):
                continue
        kept.append(member)
    return kept


def _quantile_cuts(sorted_keys: Sequence[int], n_shards: int) -> List[int]:
    """Interior cut keys (length ``n_shards - 1``), nondecreasing."""
    cuts: List[int] = []
    total = len(sorted_keys)
    for i in range(1, n_shards):
        idx = (i * total) // n_shards
        cut = sorted_keys[min(idx, total - 1)] if total else 0
        if cuts and cut < cuts[-1]:
            cut = cuts[-1]
        cuts.append(cut)
    return cuts


def plan_zone_ownership(
    dec_values: Sequence[float],
    n_shards: int,
    zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG,
    htm_depth: int = 0,
) -> Tuple[ZoneRangeOwnership, ...]:
    """Partition the zone-id space into ``n_shards`` row-balanced ranges.

    Cuts are zone-id quantiles of the table's declinations, forced
    nondecreasing; together the ranges cover the *entire* zone space
    (shard 0 starts at zone 0, the last shard ends at the last zone), so
    every representable declination has exactly one owner. Shards whose
    quantile collapses onto a neighbour come out empty — legal.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    zones = sorted(zone_of(d, zone_height_deg) for d in dec_values)
    cuts = [0] + _quantile_cuts(zones, n_shards) + [zone_count(zone_height_deg)]
    return tuple(
        ZoneRangeOwnership(
            zone_lo=cuts[i],
            zone_hi=cuts[i + 1] - 1,
            zone_height_deg=zone_height_deg,
            htm_depth=htm_depth,
        )
        for i in range(n_shards)
    )


def plan_htm_ownership(
    htm_ids: Sequence[int],
    n_shards: int,
    htm_depth: int,
    align_depth: Optional[int] = None,
) -> Tuple[HTMRangeOwnership, ...]:
    """Partition the depth-``d`` HTM id space into ``n_shards`` intervals.

    Cuts are id quantiles of the table's rows, rounded *down* to the
    start of an ``align_depth`` trixel (default ``htm_depth - 3``, i.e.
    64-id blocks) so shard boundaries follow coarse-trixel edges, then
    forced nondecreasing. The intervals cover the whole depth-``d`` id
    space ``[8 * 4**d, 16 * 4**d - 1]``.
    """
    if n_shards < 1:
        raise ConfigurationError(f"n_shards must be >= 1, got {n_shards}")
    if htm_depth < 0:
        raise ConfigurationError(f"htm_depth must be >= 0, got {htm_depth}")
    if align_depth is None:
        align_depth = max(0, htm_depth - 3)
    if not 0 <= align_depth <= htm_depth:
        raise ConfigurationError(
            f"align_depth {align_depth} outside [0, {htm_depth}]"
        )
    shift = 2 * (htm_depth - align_depth)
    key_lo = 8 << (2 * htm_depth)
    key_end = 16 << (2 * htm_depth)  # exclusive
    ids = sorted(int(h) for h in htm_ids)
    raw = _quantile_cuts(ids, n_shards)
    cuts = [key_lo]
    for cut in raw:
        aligned = max(key_lo, min((cut >> shift) << shift, key_end))
        cuts.append(max(aligned, cuts[-1]))
    cuts.append(key_end)
    return tuple(
        HTMRangeOwnership(
            id_lo=cuts[i], id_hi=cuts[i + 1] - 1, htm_depth=htm_depth
        )
        for i in range(n_shards)
    )
