"""Shard topology: the advertised layout of a sharded archive.

A sharded archive registers one :class:`ShardSet` alongside its normal
service endpoints. Each :class:`ShardMember` pairs an ownership slice
with an *ordered* endpoint-candidate list — the shard primary first,
then its replicas — mirroring the archive-level candidate lists the
executor already fails over across. The set travels over the wire once
at registration; at query time the coordinating node and the planner
consult their local copies, so the per-query plan wire stays free of
shard detail (the layout reaches the semantic cache only through the
fingerprint's execution profile, via :meth:`ShardSet.layout_signature`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.shard.ownership import (
    HTM_KEY,
    ZONE_KEY,
    HTMRangeOwnership,
    Ownership,
    ZoneRangeOwnership,
    ownership_from_wire,
)


@dataclass(frozen=True)
class ShardMember:
    """One shard: a name, an ownership slice, and endpoint candidates.

    ``endpoints`` is an ordered tuple of service-URL mappings (each like
    a SkyNode's ``service_urls()``); index 0 is the shard primary, later
    entries its replicas, tried in order on transport failure.
    """

    name: str
    ownership: Ownership
    endpoints: Tuple[Mapping[str, str], ...]

    def candidate_urls(self, service: str) -> Tuple[str, ...]:
        """The ordered failover candidates for one service."""
        return tuple(
            ep[service] for ep in self.endpoints if service in ep
        )

    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "ownership": self.ownership.to_wire(),
            "endpoints": [dict(ep) for ep in self.endpoints],
        }

    @classmethod
    def from_wire(cls, data: Mapping[str, Any]) -> "ShardMember":
        endpoints = tuple(
            {str(k): str(v) for k, v in ep.items()}
            for ep in data.get("endpoints", [])
        )
        return cls(
            name=str(data["name"]),
            ownership=ownership_from_wire(dict(data["ownership"])),
            endpoints=endpoints,
        )


@dataclass(frozen=True)
class ShardSet:
    """The complete shard layout of one archive table."""

    members: Tuple[ShardMember, ...]

    @property
    def shard_key(self) -> str:
        """``"zone"`` or ``"htm"``, derived from the members' ownerships."""
        kinds = {
            ZONE_KEY if isinstance(m.ownership, ZoneRangeOwnership) else HTM_KEY
            for m in self.members
        }
        if len(kinds) != 1:
            raise PlanningError(
                f"shard set mixes ownership kinds: {sorted(kinds)}"
            )
        return next(iter(kinds))

    def member_named(self, name: str) -> Optional[ShardMember]:
        for member in self.members:
            if member.name == name:
                return member
        return None

    def layout_signature(self) -> str:
        """A content-based layout token for the execution profile.

        Folds the shard key and every member's ownership bounds — but no
        endpoint URLs — into the plan fingerprint, so the semantic cache
        distinguishes layouts (a re-provisioned federation must not hit a
        stale layout's entries) while replica substitution stays
        fingerprint-neutral, exactly like archive-level failover.
        """
        parts: List[str] = [self.shard_key]
        for member in self.members:
            own = member.ownership
            if isinstance(own, ZoneRangeOwnership):
                parts.append(
                    f"z:{own.zone_lo}:{own.zone_hi}"
                    f":{own.zone_height_deg!r}:{own.htm_depth}"
                )
            elif isinstance(own, HTMRangeOwnership):
                parts.append(f"h:{own.id_lo}:{own.id_hi}:{own.htm_depth}")
            else:  # pragma: no cover - exhaustive over Ownership
                raise PlanningError(f"unknown ownership {own!r}")
        return "|".join(parts)

    def to_wire(self) -> List[Dict[str, Any]]:
        return [member.to_wire() for member in self.members]

    @classmethod
    def from_wire(cls, data: Sequence[Mapping[str, Any]]) -> "ShardSet":
        return cls(
            members=tuple(ShardMember.from_wire(item) for item in data)
        )
