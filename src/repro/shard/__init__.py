"""Spatial sharding: ownership models, topology, and gather-merge order.

One archive may register as N *spatial shards*: worker SkyNodes that each
own a slice of the sky (a declination zone range or an HTM trixel-prefix
id interval) and hold exactly the primary table rows whose positions fall
inside it. The successor systems to the paper scale this way — the
parallel probabilistic join engine (Dobos et al.) and the zone-parallel
XMatch work both give every worker ownership of a sky partition.

This package is deliberately free of service/transport code: it holds the
pure, deterministic pieces that both the Portal (planner pruning, shard
advertisement in the catalog) and the SkyNodes (scatter-gather fan-out,
canonical merge) share:

* :mod:`repro.shard.ownership` — the two ownership models, their wire
  codecs, quantile partition planning, and the exact-safe pruning
  predicates.
* :mod:`repro.shard.topology` — :class:`ShardMember` / :class:`ShardSet`,
  the advertised shard layout with per-shard endpoint-candidate lists.
* :mod:`repro.shard.merge` — the canonical gather order that makes a
  scatter-gather hop byte-identical to its monolithic twin.
"""

from repro.shard.merge import merge_match_lists, merge_seed_rows
from repro.shard.ownership import (
    HTM_KEY,
    SHARD_KEYS,
    ZONE_KEY,
    HTMRangeOwnership,
    ZoneRangeOwnership,
    members_for_tuple,
    ownership_from_wire,
    plan_htm_ownership,
    plan_zone_ownership,
    prune_members,
    trixel_pad_deg,
)
from repro.shard.topology import ShardMember, ShardSet

__all__ = [
    "HTM_KEY",
    "SHARD_KEYS",
    "ZONE_KEY",
    "HTMRangeOwnership",
    "ShardMember",
    "ShardSet",
    "ZoneRangeOwnership",
    "members_for_tuple",
    "merge_match_lists",
    "merge_seed_rows",
    "ownership_from_wire",
    "plan_htm_ownership",
    "plan_zone_ownership",
    "prune_members",
    "trixel_pad_deg",
]
