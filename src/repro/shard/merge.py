"""Canonical gather-merge order for scatter-gather hops.

Byte-identity with the monolithic twin hinges on reproducing the exact
row order the monolithic engine emits. Shards therefore ship each row's
original table position in a trailing ``_skyq_pos`` column (assigned at
provisioning time from the monolithic insert order), and the coordinator
re-sorts the gathered union with the keys below.

**Seed hops.** The engine's spatial probe yields rows of the cover's
*full* ranges first (those need no geometric recheck), then rows of the
*partial* ranges, each group in ``(htm_id, position)`` order — that is
the order a monolithic seed query returns. The merge key is therefore
``(group, htm_id, position)`` where ``group`` is 0 for ids inside the
cover's full ranges and 1 otherwise, and ``htm_id`` is *recomputed* at
the coordinator from the shipped (ra, dec) through the same
``radec_to_vector`` + ``id_for_point`` path the insert side used — the
wire round-trips floats exactly, so the recomputed id is bitwise equal
to the stored one. Without an AREA the query is a full scan and rows
come back in plain position order.

**Match hops.** The monolithic step emits matches as ``for seq in
sorted(matches): for obj in objects`` with each tuple's objects in
ascending row-position order; per-seq concatenation sorted by
``_skyq_pos`` reproduces it (ownership partitions rows, so no two
shards ever ship the same ``(seq, position)`` pair).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.htm.index import id_for_point
from repro.htm.ranges import HTMRanges
from repro.sphere.coords import radec_to_vector


def merge_seed_rows(
    rows: Sequence[Tuple[Any, ...]],
    *,
    htm_depth: int,
    full_ranges: Optional[HTMRanges] = None,
) -> List[Tuple[Any, ...]]:
    """Sort gathered seed rows into monolithic probe order.

    Each row is ``(id, ra, dec, *attrs, _skyq_pos)`` — the monolithic
    seed SELECT columns with the position appended last. Pass
    ``full_ranges`` (the query cover's full ranges at the table's index
    depth) when the plan has an AREA; ``None`` means a full scan, which
    the engine returns in plain position order.
    """
    if full_ranges is None:
        return sorted(rows, key=lambda row: row[-1])

    def probe_key(row: Tuple[Any, ...]) -> Tuple[int, int, Any]:
        hid = id_for_point(
            radec_to_vector(float(row[1]), float(row[2])), htm_depth
        )
        return (0 if full_ranges.contains(hid) else 1, hid, row[-1])

    return sorted(rows, key=probe_key)


def merge_match_lists(
    rows: Sequence[Tuple[Any, ...]],
) -> List[Tuple[int, List[Tuple[Any, ...]]]]:
    """Group gathered match rows into monolithic emission order.

    Each row is ``(seq, _skyq_pos, *payload)``. Returns ``(seq,
    rows-of-that-seq)`` pairs with seqs ascending and each tuple's rows
    in ascending position order — exactly the monolithic
    ``sorted(matches.items())`` traversal.
    """
    by_seq: dict = {}
    for row in rows:
        by_seq.setdefault(int(row[0]), []).append(row)
    return [
        (seq, sorted(by_seq[seq], key=lambda row: row[1]))
        for seq in sorted(by_seq)
    ]
