"""Baselines the paper's design is measured against.

* :class:`~repro.baselines.pull_mediator.PullMediator` — "Many federations,
  based on the wrapper-mediator architecture, pull results from each
  database to the Portal" (Section 5.1). SkyQuery's chained shipping is
  benchmarked against exactly that.
* Alternative chain orderings live in
  :class:`repro.portal.planner.OrderingStrategy` (count-ascending, random,
  as-written) as baselines for the count-star ordering experiment.
* The brute-force spatial scan baseline is the engine's
  ``use_spatial_index = False`` mode (HTM experiment).
"""

from repro.baselines.pull_mediator import PullMediator

__all__ = ["PullMediator"]
