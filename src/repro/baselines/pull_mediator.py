"""The pull-everything-to-the-mediator baseline.

Runs the same decomposed cross-match query, but instead of daisy-chaining
partial results between SkyNodes, the Portal pulls every archive's full
AREA-qualified row set over the network (via each node's Query service)
and computes the cross match centrally. Correctness is identical — the
benchmarks compare wire bytes and simulated time against the chain.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ExecutionError
from repro.portal.decompose import DecomposedQuery, NodeSubquery, decompose
from repro.portal.executor import FederatedResult
from repro.portal.portal import Portal
from repro.soap.encoding import WireRowSet
from repro.sphere.coords import radec_to_vector
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    Query,
    SelectItem,
    TableRef,
)
from repro.sql.parser import parse_query
from repro.sql.printer import to_sql
from repro.units import arcsec_to_rad
from repro.xmatch.stream import run_chain
from repro.xmatch.tuples import LocalObject

PHASE = "pull-mediator"


class PullMediator:
    """Pulls full per-archive results to the Portal and matches there.

    ``kernel`` selects the central matcher engine: the numpy batch kernel
    (``vectorized``, the default), the brute-force reference (``scalar``),
    or the optional scipy ``kdtree`` — all three produce identical match
    sets (see :func:`repro.xmatch.stream.run_chain`).
    """

    def __init__(self, portal: Portal, *, kernel: str = "vectorized") -> None:
        self._portal = portal
        self._kernel = kernel

    def execute(self, sql: str) -> FederatedResult:
        """Run a cross-match query with the pull strategy."""
        query = parse_query(sql)
        decomposed = decompose(query, self._portal.catalog)
        assert decomposed.xmatch is not None

        network = self._portal.require_network()
        pulled: Dict[str, List[LocalObject]] = {}
        with network.phase(PHASE):
            for term in decomposed.xmatch.terms:
                subquery = decomposed.subqueries[term.alias]
                pulled[term.alias] = self._pull_archive(subquery, decomposed)

        # Mandatory archives first (query order), then drop-outs — the
        # reference matcher requires a mean position before exclusion tests.
        chain_spec = []
        for term in decomposed.xmatch.mandatory + decomposed.xmatch.dropouts:
            record = self._portal.catalog.node(
                decomposed.subqueries[term.alias].archive
            )
            chain_spec.append(
                (
                    term.alias,
                    pulled[term.alias],
                    arcsec_to_rad(record.info.sigma_arcsec),
                    term.dropout,
                )
            )
        tuples = run_chain(
            chain_spec, decomposed.xmatch.threshold, engine=self._kernel
        )
        return self._finish(decomposed, tuples)

    def _finish(
        self, decomposed: DecomposedQuery, tuples: List
    ) -> FederatedResult:
        executor = self._portal.executor
        survivors = [
            t for t in tuples if executor._passes_cross_conjuncts(decomposed, t)
        ]
        columns = executor._output_columns(decomposed.query.items)
        rows = [executor._project(decomposed.query.items, t) for t in survivors]
        limit = decomposed.query.limit
        if limit is not None:
            rows = rows[:limit]
        return FederatedResult(
            columns=columns,
            rows=rows,
            matched_tuples=len(tuples),
        )

    def _pull_archive(
        self, subquery: NodeSubquery, decomposed: DecomposedQuery
    ) -> List[LocalObject]:
        record = self._portal.catalog.node(subquery.archive)
        info = record.info
        items: List[SelectItem] = [
            SelectItem(ColumnRef(subquery.alias, info.object_id_column)),
            SelectItem(ColumnRef(subquery.alias, info.ra_column)),
            SelectItem(ColumnRef(subquery.alias, info.dec_column)),
        ]
        items.extend(
            SelectItem(ColumnRef(subquery.alias, column))
            for column, _, _ in subquery.attr_select
        )
        where: Expr | None = decomposed.area
        if subquery.residual_sql:
            from repro.sql.parser import parse_expression

            residual = parse_expression(subquery.residual_sql)
            where = residual if where is None else BinaryOp("AND", where, residual)
        node_query = Query(
            items=tuple(items),
            tables=(TableRef(None, subquery.table, subquery.alias),),
            where=where,
        )
        proxy = self._portal.proxy(record.services["query"])
        # The chunk-aware call: pull-based mediators face exactly the same
        # XML parser ceiling as the chain, so they need the same workaround.
        from repro.services.chunked import receive_rowset

        response = proxy.call("ExecuteQueryChunked", sql=to_sql(node_query))
        rowset = receive_rowset(response, proxy)
        if not isinstance(rowset, WireRowSet):
            raise ExecutionError(
                f"Query service at {subquery.archive!r} returned no rowset"
            )
        attr_names = [column for column, _, _ in subquery.attr_select]
        objects: List[LocalObject] = []
        for row in rowset.rows:
            objects.append(
                LocalObject(
                    object_id=int(row[0]),
                    position=radec_to_vector(float(row[1]), float(row[2])),
                    attributes=dict(zip(attr_names, row[3:])),
                )
            )
        return objects
