"""A programmatic SkyQuery client.

"The Clients are web interfaces (or similar applications) that accept user
queries and pass them on to the Portal." This is the 'similar application':
it speaks real SOAP to the Portal's SkyQuery service over the simulated
network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.errors import ExecutionError
from repro.services.client import ServiceProxy
from repro.services.retry import RetryPolicy
from repro.soap.encoding import WireRowSet
from repro.transport.network import SimulatedNetwork

if TYPE_CHECKING:
    from repro.tracing.tracer import Trace


@dataclass
class ClientResult:
    """A federated query's answer as the client sees it."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    node_stats: List[Dict[str, Any]] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)
    #: Snapshot epoch each archive alias was pinned at while planning —
    #: re-submitting against the same epochs repeats the read exactly.
    epochs: Dict[str, int] = field(default_factory=dict)
    matched_tuples: int = 0
    plan: Optional[Dict[str, Any]] = None
    #: Per-node degradation events relayed from the Portal (see
    #: docs/RESILIENCE.md for the degraded-result contract).
    warnings: List[str] = field(default_factory=list)
    degraded: bool = False
    #: Endpoint substitutions the Portal made (plan-time or mid-chain).
    #: A failed-over answer is complete — every archive contributed.
    failovers: int = 0
    #: The query's span tree, rooted at this client's SubmitQuery call
    #: (None when the federation was built with ``tracing=False``).
    trace: Optional["Trace"] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class SkyQueryClient:
    """Submits cross-match SQL to the Portal and decodes the answer."""

    def __init__(
        self,
        network: SimulatedNetwork,
        skyquery_url: str,
        *,
        hostname: str = "client.skyquery.net",
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.network = network
        self.hostname = hostname
        self._proxy = ServiceProxy(
            network, hostname, skyquery_url, retry_policy=retry_policy
        )

    def explain(self, sql: str, *, strategy: str = "") -> Dict[str, Any]:
        """The Portal's plan for a query, without executing the chain."""
        with self.network.phase("client"):
            response = self._proxy.call("ExplainQuery", sql=sql,
                                        strategy=strategy)
        if not isinstance(response, dict):
            raise ExecutionError(f"malformed Portal response: {response!r}")
        return response

    def federation_info(self) -> Dict[str, Any]:
        """What the federation offers: archives, tables, sigmas, footprints."""
        with self.network.phase("client"):
            response = self._proxy.call("GetFederation")
        if not isinstance(response, dict):
            raise ExecutionError(f"malformed Portal response: {response!r}")
        return response

    def submit(self, sql: str, *, strategy: str = "") -> ClientResult:
        """Run a query; ``strategy`` overrides the plan ordering (benchmarks)."""
        tracer = self.network.tracer
        before = len(tracer.trace_ids()) if tracer is not None else 0
        with self.network.phase("client"):
            response = self._proxy.call("SubmitQuery", sql=sql, strategy=strategy)
        # This call's client span rooted a fresh trace; hand its tree over.
        trace = None
        if tracer is not None and len(tracer.trace_ids()) > before:
            trace = tracer.trace(tracer.trace_ids()[-1])
        if not isinstance(response, dict):
            raise ExecutionError(f"malformed Portal response: {response!r}")
        rowset = response.get("rows")
        if not isinstance(rowset, WireRowSet):
            raise ExecutionError("Portal response carries no rowset")
        return ClientResult(
            columns=[str(c) for c in response.get("columns") or rowset.column_names],
            rows=list(rowset.rows),
            node_stats=list(response.get("stats") or []),
            counts={
                str(k): int(v) for k, v in (response.get("counts") or {}).items()
            },
            epochs={
                str(k): int(v) for k, v in (response.get("epochs") or {}).items()
            },
            matched_tuples=int(response.get("matched_tuples") or 0),
            plan=response.get("plan"),
            warnings=[str(w) for w in (response.get("warnings") or [])],
            degraded=bool(response.get("degraded")),
            failovers=int(response.get("failovers") or 0),
            trace=trace,
        )
