"""The Client side: submit queries to the Portal, format results."""

from repro.client.client import ClientResult, SkyQueryClient
from repro.client.formatting import format_table, to_votable

__all__ = ["ClientResult", "SkyQueryClient", "format_table", "to_votable"]
