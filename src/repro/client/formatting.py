"""Result rendering: plain-text tables and VOTable export.

The VOTable form matters historically: SkyQuery fed directly into the
Virtual Observatory effort, whose interchange format for tabular
astronomy data is the VOTable — an XML dialect, just like everything else
in this Web-services stack.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple


def _cell(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Sequence[Tuple[Any, ...]],
    *,
    max_rows: int | None = None,
) -> str:
    """Render an ASCII table (with an elision marker past ``max_rows``)."""
    shown = list(rows if max_rows is None else rows[:max_rows])
    cells = [[_cell(v) for v in row] for row in shown]
    widths = [len(c) for c in columns]
    for row in cells:
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        " | ".join(name.ljust(w) for name, w in zip(columns, widths)),
        sep,
    ]
    lines.extend(
        " | ".join(text.ljust(w) for text, w in zip(row, widths))
        for row in cells
    )
    if max_rows is not None and len(rows) > max_rows:
        lines.append(f"... ({len(rows) - max_rows} more rows)")
    return "\n".join(lines)


_VOTABLE_TYPES = {"int": "long", "double": "double", "string": "char",
                  "boolean": "boolean"}


def to_votable(
    columns: Sequence[str],
    rows: Sequence[Tuple[Any, ...]],
    *,
    table_name: str = "results",
    description: str = "",
) -> str:
    """Render rows as a (minimal) VOTable XML document."""
    from repro.soap.encoding import infer_rowset
    from repro.soap.xmlwriter import Element, render

    rowset = infer_rowset(list(columns), list(rows))
    root = Element(
        "VOTABLE",
        {"version": "1.3", "xmlns": "http://www.ivoa.net/xml/VOTable/v1.3"},
    )
    resource = root.child("RESOURCE")
    table = resource.child("TABLE", name=table_name)
    if description:
        table.child("DESCRIPTION", text=description)
    for name, code in rowset.columns:
        table.child(
            "FIELD",
            name=name,
            datatype=_VOTABLE_TYPES[code],
            **({"arraysize": "*"} if code == "string" else {}),
        )
    data = table.child("DATA").child("TABLEDATA")
    for row in rowset.rows:
        tr = data.child("TR")
        for value in row:
            tr.child("TD", text=_votable_cell(value))
    return render(root, indent="  ")


def _votable_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)
