"""Zone-id arithmetic and the sorted ``(zone, ra)`` search arrays.

A *zone* is a declination stripe of fixed angular height::

    zone_id = floor((dec + 90) / zone_height)

Objects are sorted by ``(zone, ra)`` once; a spatial search for a cap then
touches only the zones its declination window overlaps, and inside each
zone an RA interval resolves to one ``searchsorted`` slice (two when the
interval wraps through 0/360).

Every window this module produces is a deliberate *superset* of the cap it
was derived from: the callers (the cross-match kernels and the stored
procedure) always re-filter candidates with an exact geometric or
chi-squared test, so the window math can round outward freely — missing a
true candidate would lose matches, admitting an extra one only costs a
rejected test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import GeometryError

#: Default zone height: 30 arcseconds. Search radii in this system are
#: ``threshold * (sigma + 1/sqrt(a))`` with arcsecond-scale sigmas (about
#: 0.7-7 arcsec), so a 30 arcsec stripe keeps every window within one or
#: two zones of the cap center while each zone stays densely populated.
DEFAULT_ZONE_HEIGHT_DEG = 30.0 / 3600.0

#: Outward padding (degrees) applied to every window bound. Covers the
#: float rounding of the window trigonometry and of the composite
#: ``zone*360 + ra`` sort key — both are orders of magnitude below this.
_WINDOW_PAD_DEG = 1e-7


def zone_count(zone_height_deg: float) -> int:
    """Number of zones covering the full declination range."""
    if zone_height_deg <= 0.0:
        raise GeometryError(
            f"zone height must be positive, got {zone_height_deg!r}"
        )
    return int(math.ceil(180.0 / zone_height_deg))


def zone_of(dec_deg: float, zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG) -> int:
    """The zone id of one declination: ``floor((dec + 90) / height)``.

    The north pole itself (dec exactly +90) is clamped into the last zone
    so every valid declination owns exactly one zone.
    """
    n = zone_count(zone_height_deg)
    z = int(math.floor((dec_deg + 90.0) / zone_height_deg))
    return min(max(z, 0), n - 1)


def _zone_ids(dec_deg: np.ndarray, zone_height_deg: float) -> np.ndarray:
    """Vectorized :func:`zone_of` over a float64 declination array."""
    n = zone_count(zone_height_deg)
    z = np.floor((dec_deg + 90.0) / zone_height_deg).astype(np.int64)
    return np.clip(z, 0, n - 1)


def unit_vectors_to_radec(
    positions: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Columnar (ra_deg, dec_deg) of an ``(n, 3)`` unit-vector matrix.

    Only used to *place* objects into zone/RA buckets — the buckets gate a
    superset search, so this need not be bitwise-equal to any scalar path.
    """
    ra = np.degrees(np.arctan2(positions[:, 1], positions[:, 0]))
    ra = np.mod(ra, 360.0)
    ra[ra >= 360.0] = 0.0
    dec = np.degrees(np.arcsin(np.clip(positions[:, 2], -1.0, 1.0)))
    return ra, dec


def cap_windows(
    ra_c_deg: np.ndarray,
    dec_c_deg: np.ndarray,
    radius_rad: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-cap (dec_lo, dec_hi, ra_halfwidth) windows, all in degrees.

    The declination window is ``dec_c ± r``; the RA half-width is the
    exact extreme-longitude bound of a small circle,
    ``asin(sin r / cos dec_c)``, falling back to the full circle (180°)
    when the cap reaches a pole or the ratio leaves ``[0, 1]``. All three
    bounds are padded outward (superset; callers re-filter exactly).
    """
    r_deg = np.degrees(radius_rad) + _WINDOW_PAD_DEG
    dec_lo = dec_c_deg - r_deg
    dec_hi = dec_c_deg + r_deg
    cos_dec = np.cos(np.radians(dec_c_deg))
    sin_r = np.sin(np.minimum(radius_rad, math.pi / 2.0))
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(cos_dec > 0.0, sin_r / np.where(cos_dec > 0.0, cos_dec, 1.0), 2.0)
    polar = (np.abs(dec_c_deg) + r_deg >= 90.0) | (ratio >= 1.0) | (
        np.minimum(radius_rad, np.pi) >= math.pi / 2.0
    )
    halfwidth = np.where(
        polar,
        180.0,
        np.degrees(np.arcsin(np.clip(ratio, 0.0, 1.0))) + _WINDOW_PAD_DEG,
    )
    return dec_lo, dec_hi, halfwidth


@dataclass(frozen=True)
class ZoneArrays:
    """One table's (or object list's) zone index, sorted by ``(zone, ra)``.

    ``order[k]`` is the original row position / object index of the k-th
    entry in zone-major, RA-ascending order. ``keys`` is the composite
    float64 sort key ``zone * 360 + ra`` — globally ascending because RA
    lives in [0, 360) — which lets a batch of (zone, RA-interval) probes
    resolve as *one* vectorized ``searchsorted`` per interval side.
    """

    zone_height_deg: float
    n_zones: int
    zones: np.ndarray  # (n,) int64, ascending
    ra: np.ndarray  # (n,) float64, ascending within each zone
    keys: np.ndarray  # (n,) float64 = zones * 360 + ra, ascending
    order: np.ndarray  # (n,) int64 original positions

    @classmethod
    def build(
        cls,
        ra_deg: np.ndarray,
        dec_deg: np.ndarray,
        zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG,
    ) -> "ZoneArrays":
        """Sort positions into the zone arrays (stable on row position)."""
        n_zones = zone_count(zone_height_deg)
        ra = np.mod(np.asarray(ra_deg, dtype=np.float64), 360.0)
        ra[ra >= 360.0] = 0.0
        dec = np.asarray(dec_deg, dtype=np.float64)
        if ra.shape != dec.shape or ra.ndim != 1:
            raise GeometryError(
                f"ra/dec arrays must be parallel 1-d, got {ra.shape} / {dec.shape}"
            )
        zones = _zone_ids(dec, zone_height_deg)
        order = np.lexsort((np.arange(len(ra), dtype=np.int64), ra, zones))
        zones_sorted = zones[order]
        ra_sorted = ra[order]
        return cls(
            zone_height_deg=zone_height_deg,
            n_zones=n_zones,
            zones=zones_sorted,
            ra=ra_sorted,
            keys=zones_sorted * 360.0 + ra_sorted,
            order=np.ascontiguousarray(order),
        )

    def __len__(self) -> int:
        return len(self.order)

    def window_pairs(
        self,
        dec_lo_deg: np.ndarray,
        dec_hi_deg: np.ndarray,
        ra_c_deg: np.ndarray,
        ra_halfwidth_deg: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All (window, member) hits for a batch of dec/RA windows.

        Returns parallel int64 arrays ``(window_index, original_index)``
        covering every indexed position whose zone falls in the window's
        declination range and whose RA falls in ``ra_c ± halfwidth``
        (wrapping through 0/360; a half-width >= 180 scans whole zones).
        Pair order is unspecified — callers sort as needed.
        """
        m = len(ra_c_deg)
        if m == 0 or len(self) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        zmin = _zone_ids(np.asarray(dec_lo_deg, dtype=np.float64), self.zone_height_deg)
        zmax = _zone_ids(np.asarray(dec_hi_deg, dtype=np.float64), self.zone_height_deg)
        full = ra_halfwidth_deg >= 180.0
        ra_lo = ra_c_deg - ra_halfwidth_deg
        ra_hi = ra_c_deg + ra_halfwidth_deg
        wrap_lo = (~full) & (ra_lo < 0.0)
        wrap_hi = (~full) & (ra_hi > 360.0)
        # Primary interval A and (for wrapped windows) secondary interval B;
        # B defaults to an empty [1, 0] interval when there is no wrap.
        a_lo = np.where(full | wrap_lo, 0.0, ra_lo)
        a_hi = np.where(full | wrap_hi, 360.0, ra_hi)
        b_lo = np.where(wrap_lo, ra_lo + 360.0, np.where(wrap_hi, 0.0, 1.0))
        b_hi = np.where(wrap_lo, 360.0, np.where(wrap_hi, ra_hi - 360.0, 0.0))

        widx = np.arange(m, dtype=np.int64)
        pair_t_parts = []
        pair_i_parts = []
        max_span = int(np.max(zmax - zmin))
        for d in range(max_span + 1):
            z = zmin + d
            active = z <= zmax
            if not np.any(active):
                break
            zbase = z[active].astype(np.float64) * 360.0
            for lo, hi in ((a_lo, a_hi), (b_lo, b_hi)):
                starts = np.searchsorted(self.keys, zbase + lo[active], side="left")
                stops = np.searchsorted(self.keys, zbase + hi[active], side="right")
                lengths = stops - starts
                nonzero = lengths > 0
                if not np.any(nonzero):
                    continue
                starts = starts[nonzero]
                lengths = lengths[nonzero]
                tuple_ids = widx[active][nonzero]
                total = int(lengths.sum())
                offsets = np.cumsum(lengths) - lengths
                flat = (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(offsets, lengths)
                    + np.repeat(starts, lengths)
                )
                pair_t_parts.append(np.repeat(tuple_ids, lengths))
                pair_i_parts.append(self.order[flat])
        if not pair_t_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(pair_t_parts), np.concatenate(pair_i_parts)
