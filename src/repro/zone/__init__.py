"""The zone index: declination buckets for sorted-merge cross-matching.

The successors of the CIDR 2003 system — Nieto-Santisteban et al.,
*Large-Scale Query and XMatch, Entering the Parallel Zone* (MSR-TR-2005-169)
and Dobos et al., *SkyQuery: A Parallel Probabilistic Join Engine*
(arXiv:1206.5021) — replaced per-point HTM cap probing with the zone
algorithm: bucket objects into fixed-height declination zones, sort each
zone by right ascension, and turn every spatial range search into a handful
of ``searchsorted`` slices over adjacent zones. This package provides the
zone-id arithmetic, the sorted ``(zone, ra)`` arrays, and the batched
window search the cross-match engines build on.
"""

from repro.zone.index import (
    DEFAULT_ZONE_HEIGHT_DEG,
    ZoneArrays,
    cap_windows,
    unit_vectors_to_radec,
    zone_count,
    zone_of,
)

__all__ = [
    "DEFAULT_ZONE_HEIGHT_DEG",
    "ZoneArrays",
    "cap_windows",
    "unit_vectors_to_radec",
    "zone_count",
    "zone_of",
]
