"""Column types and value coercion for the relational engine."""

from __future__ import annotations

from enum import Enum
from typing import Any

from repro.errors import SchemaError


class ColumnType(Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def coerce(self, value: Any, *, nullable: bool = True, column: str = "?") -> Any:
        """Coerce ``value`` to this type, raising :class:`SchemaError` on mismatch."""
        if value is None:
            if nullable:
                return None
            raise SchemaError(f"column {column!r} is NOT NULL")
        if self is ColumnType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                if isinstance(value, float) and value.is_integer():
                    return int(value)
                raise SchemaError(
                    f"column {column!r} expects INT, got {type(value).__name__}"
                )
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(
                    f"column {column!r} expects FLOAT, got {type(value).__name__}"
                )
            return float(value)
        if self is ColumnType.STRING:
            if not isinstance(value, str):
                raise SchemaError(
                    f"column {column!r} expects STRING, got {type(value).__name__}"
                )
            return value
        if not isinstance(value, bool):
            raise SchemaError(
                f"column {column!r} expects BOOL, got {type(value).__name__}"
            )
        return value

    @classmethod
    def of_value(cls, value: Any) -> "ColumnType":
        """Infer the column type of a python value (bool before int!)."""
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, int):
            return cls.INT
        if isinstance(value, float):
            return cls.FLOAT
        if isinstance(value, str):
            return cls.STRING
        raise SchemaError(f"unsupported value type {type(value).__name__}")
