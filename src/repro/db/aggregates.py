"""Aggregate evaluation: COUNT / SUM / AVG / MIN / MAX with GROUP BY / HAVING.

The engine detects aggregate queries (any select item, HAVING, or ORDER BY
key containing an aggregate call, or an explicit GROUP BY), scans matching
rows once while accumulating per-group state, then evaluates the output
expressions against the finished groups. Standard SQL NULL semantics:
``COUNT(*)`` counts rows, every other aggregate ignores NULL inputs, and an
empty input yields NULL (0 for COUNT).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.db.expr import RowContext, evaluate
from repro.errors import QueryError
from repro.sql.ast import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    Query,
    Star,
    UnaryOp,
)

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate_call(expr: Expr) -> bool:
    """True for a COUNT/SUM/AVG/MIN/MAX call node."""
    return isinstance(expr, FuncCall) and expr.name.upper() in AGGREGATE_NAMES


def contains_aggregate(expr: Expr) -> bool:
    """True if any aggregate call appears in the expression tree."""
    if is_aggregate_call(expr):
        return True
    if isinstance(expr, FuncCall):
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    return False


def is_aggregate_query(query: Query) -> bool:
    """True if the query needs the grouped execution path."""
    if query.group_by:
        return True
    if any(contains_aggregate(item.expr) for item in query.items):
        return True
    if query.having is not None:
        return True
    return any(contains_aggregate(item.expr) for item in query.order_by)


def collect_aggregates(query: Query) -> List[FuncCall]:
    """Every distinct aggregate call in SELECT, HAVING, and ORDER BY."""
    found: List[FuncCall] = []

    def walk(expr: Expr) -> None:
        if is_aggregate_call(expr):
            assert isinstance(expr, FuncCall)
            for arg in expr.args:
                if contains_aggregate(arg):
                    raise QueryError("aggregates cannot be nested")
            if expr not in found:
                found.append(expr)
            return
        if isinstance(expr, FuncCall):
            for arg in expr.args:
                walk(arg)
        elif isinstance(expr, BinaryOp):
            walk(expr.left)
            walk(expr.right)
        elif isinstance(expr, (UnaryOp, IsNull)):
            walk(expr.operand)

    for item in query.items:
        walk(item.expr)
    if query.having is not None:
        walk(query.having)
    for order in query.order_by:
        walk(order.expr)
    return found


@dataclass
class _AggState:
    count: int = 0
    total: float = 0.0
    saw_float: bool = False
    minimum: Any = None
    maximum: Any = None

    def update_star(self) -> None:
        """COUNT(*): every row counts."""
        self.count += 1

    def update(self, name: str, value: Any) -> None:
        if name == "COUNT":
            if value is not None:
                self.count += 1
            return
        if value is None:
            return
        self.count += 1
        if name in ("SUM", "AVG"):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise QueryError(f"{name} needs numeric input, got {value!r}")
            self.total += value
            if isinstance(value, float):
                self.saw_float = True
        elif name == "MIN":
            if self.minimum is None or _less(value, self.minimum):
                self.minimum = value
        elif name == "MAX":
            if self.maximum is None or _less(self.maximum, value):
                self.maximum = value

    def result(self, name: str) -> Any:
        if name == "COUNT":
            return self.count
        if self.count == 0:
            return None
        if name == "SUM":
            return self.total if self.saw_float else int(self.total)
        if name == "AVG":
            return self.total / self.count
        if name == "MIN":
            return self.minimum
        return self.maximum


def _less(a: Any, b: Any) -> bool:
    try:
        return a < b
    except TypeError:
        raise QueryError(
            f"cannot compare {type(a).__name__} with {type(b).__name__} "
            "inside MIN/MAX"
        ) from None


@dataclass
class Group:
    """One GROUP BY bucket: its key values + finished aggregate values."""

    key: Tuple[Any, ...]
    states: Dict[FuncCall, _AggState] = field(default_factory=dict)

    def aggregate_value(self, call: FuncCall) -> Any:
        state = self.states.get(call)
        if state is None:
            raise QueryError(f"aggregate {call!r} was not accumulated")
        return state.result(call.name.upper())


class GroupedAccumulator:
    """Feeds row contexts into per-group aggregate states."""

    def __init__(self, query: Query) -> None:
        self.query = query
        self.aggregates = collect_aggregates(query)
        self.groups: Dict[Tuple[Any, ...], Group] = {}

    def feed(self, ctx: RowContext) -> None:
        """Accumulate one matching row."""
        key = tuple(evaluate(expr, ctx) for expr in self.query.group_by)
        group = self.groups.get(key)
        if group is None:
            group = Group(
                key=key,
                states={call: _AggState() for call in self.aggregates},
            )
            self.groups[key] = group
        for call in self.aggregates:
            arg = call.args[0] if call.args else Star()
            name = call.name.upper()
            if isinstance(arg, Star):
                if name != "COUNT":
                    raise QueryError(f"{name}(*) is not valid; only COUNT(*)")
                group.states[call].update_star()
            else:
                group.states[call].update(name, evaluate(arg, ctx))

    def finished_groups(self) -> List[Group]:
        """All groups; ungrouped aggregate queries get one (possibly empty)
        group even when no rows matched — ``SELECT COUNT(*) ... `` is 0, not
        zero rows."""
        if not self.groups and not self.query.group_by:
            return [
                Group(
                    key=(),
                    states={call: _AggState() for call in self.aggregates},
                )
            ]
        return list(self.groups.values())


def evaluate_grouped(
    expr: Expr, group: Group, group_by: Sequence[Expr]
) -> Any:
    """Evaluate an output expression against a finished group.

    Aggregate calls read the group's accumulated value; subexpressions
    structurally equal to a GROUP BY key read the group's key value; only
    literals and operators may appear elsewhere (standard SQL's "must be
    grouped or aggregated" rule).
    """
    if is_aggregate_call(expr):
        return group.aggregate_value(expr)  # type: ignore[arg-type]
    for i, key_expr in enumerate(group_by):
        if expr == key_expr:
            return group.key[i]
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        raise QueryError(
            f"column {expr!s} must appear in GROUP BY or inside an aggregate"
        )
    if isinstance(expr, BinaryOp):
        left = evaluate_grouped(expr.left, group, group_by)
        right = evaluate_grouped(expr.right, group, group_by)
        return _apply_binary(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        value = evaluate_grouped(expr.operand, group, group_by)
        if expr.op == "-":
            return None if value is None else -value
        if expr.op == "NOT":
            return None if value is None else not value
    if isinstance(expr, IsNull):
        value = evaluate_grouped(expr.operand, group, group_by)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, FuncCall) and expr.name.upper() == "ABS":
        value = evaluate_grouped(expr.args[0], group, group_by)
        return None if value is None else abs(value)
    raise QueryError(f"cannot evaluate {expr!r} in a grouped query")


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    from repro.db.expr import _arith, _compare  # same SQL semantics

    if op in ("+", "-", "*", "/"):
        return _arith(op, left, right)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    if op == "AND":
        return bool(left) and bool(right) if None not in (left, right) else False
    if op == "OR":
        return bool(left) or bool(right) if None not in (left, right) else False
    raise QueryError(f"unknown operator {op!r} in grouped expression")
