"""The HTM-backed spatial range scan.

Implements the paper's range-search recipe (Section 5.4): compute the
trixels entirely inside the region and the trixels that merely intersect
it; rows in the former need no geometric test, rows in the latter are
tested individually.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.db.table import Table
from repro.htm.cover import cover
from repro.sphere.regions import Region


@dataclass
class RangeScanStats:
    """What a spatial scan touched (fed into the engine's cost counters)."""

    candidate_rows: int = 0
    exact_rows: int = 0
    tested_rows: int = 0
    full_ranges: int = 0
    partial_ranges: int = 0


@dataclass
class SpatialCandidates:
    """Result of a spatial index probe: row positions plus testing needs.

    ``exact`` rows are inside the region for sure (from fully-covered
    trixels); ``candidates`` rows need an individual geometric test (from
    partially-covered trixels).
    """

    exact: List[int] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)
    stats: RangeScanStats = field(default_factory=RangeScanStats)


def spatial_probe(table: Table, region: Region) -> SpatialCandidates:
    """Probe a table's HTM entries with a region cover."""
    if table.spatial is None:
        raise ValueError(f"table {table.name!r} is not spatially indexed")
    reg_cover = cover(region, table.spatial.htm_depth)
    entries = table.spatial_entries()
    result = SpatialCandidates()
    result.stats.full_ranges = len(reg_cover.full)
    result.stats.partial_ranges = len(reg_cover.partial)
    for lo, hi in reg_cover.full:
        for pos in _rows_in_id_range(entries, lo, hi):
            result.exact.append(pos)
    for lo, hi in reg_cover.partial:
        for pos in _rows_in_id_range(entries, lo, hi):
            result.candidates.append(pos)
    result.stats.exact_rows = len(result.exact)
    result.stats.candidate_rows = len(result.exact) + len(result.candidates)
    result.stats.tested_rows = len(result.candidates)
    return result


def _rows_in_id_range(
    entries: List[Tuple[int, int]], lo: int, hi: int
) -> Iterator[int]:
    """Row positions whose htm_id falls in the inclusive [lo, hi] range."""
    start = bisect.bisect_left(entries, (lo, -1))
    for i in range(start, len(entries)):
        hid, pos = entries[i]
        if hid > hi:
            break
        yield pos
