"""The HTM-backed spatial range scan.

Implements the paper's range-search recipe (Section 5.4): compute the
trixels entirely inside the region and the trixels that merely intersect
it; rows in the former need no geometric test, rows in the latter are
tested individually.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.table import Table
from repro.htm.batch import batch_cap_covers
from repro.htm.cover import cover
from repro.sphere.regions import Cap, Region


@dataclass
class RangeScanStats:
    """What a spatial scan touched (fed into the engine's cost counters)."""

    candidate_rows: int = 0
    exact_rows: int = 0
    tested_rows: int = 0
    full_ranges: int = 0
    partial_ranges: int = 0


@dataclass
class SpatialCandidates:
    """Result of a spatial index probe: row positions plus testing needs.

    ``exact`` rows are inside the region for sure (from fully-covered
    trixels); ``candidates`` rows need an individual geometric test (from
    partially-covered trixels).
    """

    exact: List[int] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)
    stats: RangeScanStats = field(default_factory=RangeScanStats)


def spatial_probe(
    table: Table, region: Region, *, limit: Optional[int] = None
) -> SpatialCandidates:
    """Probe a table's HTM entries with a region cover.

    ``limit`` is an epoch visibility watermark: row positions at or past
    it are invisible to the probing snapshot and are skipped. Storage is
    append-only, so the sorted HTM entries stay valid for every epoch —
    filtering by position is exact.
    """
    if table.spatial is None:
        raise ValueError(f"table {table.name!r} is not spatially indexed")
    reg_cover = cover(region, table.spatial.htm_depth)
    entries = table.spatial_entries()
    result = SpatialCandidates()
    result.stats.full_ranges = len(reg_cover.full)
    result.stats.partial_ranges = len(reg_cover.partial)
    for lo, hi in reg_cover.full:
        for pos in _rows_in_id_range(entries, lo, hi):
            if limit is None or pos < limit:
                result.exact.append(pos)
    for lo, hi in reg_cover.partial:
        for pos in _rows_in_id_range(entries, lo, hi):
            if limit is None or pos < limit:
                result.candidates.append(pos)
    result.stats.exact_rows = len(result.exact)
    result.stats.candidate_rows = len(result.exact) + len(result.candidates)
    result.stats.tested_rows = len(result.candidates)
    return result


def batch_spatial_probe(
    table: Table, regions: Sequence[Region], *, limit: Optional[int] = None
) -> List[SpatialCandidates]:
    """Probe a table's HTM entries with many region covers at once.

    The batch companion of :func:`spatial_probe` for the vectorized
    cross-match kernel: cap covers are computed level-synchronously for
    the whole batch (see :func:`repro.htm.batch.batch_cap_covers`), the
    sorted HTM entries are materialized once as numpy arrays (see
    :meth:`Table.spatial_arrays`), and every cover range becomes a
    ``searchsorted`` slice instead of a Python bisect walk. For each
    region the returned row positions, their order, and the scan stats
    are identical to what ``spatial_probe`` produces — including under
    the same epoch-visibility ``limit``.
    """
    if table.spatial is None:
        raise ValueError(f"table {table.name!r} is not spatially indexed")
    htm_ids, row_positions = table.spatial_arrays()
    depth = table.spatial.htm_depth
    if all(type(region) is Cap for region in regions):
        covers = batch_cap_covers(list(regions), depth)
    else:
        covers = [cover(region, depth) for region in regions]
    results: List[SpatialCandidates] = []
    for reg_cover in covers:
        result = SpatialCandidates()
        result.stats.full_ranges = len(reg_cover.full)
        result.stats.partial_ranges = len(reg_cover.partial)
        for ranges, out in (
            (reg_cover.full, result.exact),
            (reg_cover.partial, result.candidates),
        ):
            for lo, hi in ranges:
                start = int(np.searchsorted(htm_ids, lo, side="left"))
                stop = int(np.searchsorted(htm_ids, hi, side="right"))
                if stop > start:
                    seg = row_positions[start:stop]
                    if limit is not None:
                        seg = seg[seg < limit]
                    out.extend(seg.tolist())
        result.stats.exact_rows = len(result.exact)
        result.stats.candidate_rows = len(result.exact) + len(result.candidates)
        result.stats.tested_rows = len(result.candidates)
        results.append(result)
    return results


def _rows_in_id_range(
    entries: List[Tuple[int, int]], lo: int, hi: int
) -> Iterator[int]:
    """Row positions whose htm_id falls in the inclusive [lo, hi] range."""
    start = bisect.bisect_left(entries, (lo, -1))
    for i in range(start, len(entries)):
        hid, pos = entries[i]
        if hid > hi:
            break
        yield pos
