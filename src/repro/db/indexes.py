"""Spatial range scans over the two table indexes: HTM and zones.

The HTM half implements the paper's range-search recipe (Section 5.4):
compute the trixels entirely inside the region and the trixels that merely
intersect it; rows in the former need no geometric test, rows in the
latter are tested individually.

The zone half (:func:`zone_probe` / :func:`batch_zone_probe`) is the
successor papers' replacement: the cap becomes a declination window over a
few adjacent zones plus an RA interval per zone, each resolving to a
``searchsorted`` slice of the table's sorted ``(zone, ra)`` arrays. Zone
windows return a *superset* of the cap — callers always re-filter with an
exact geometric test.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.table import Table
from repro.htm.batch import batch_cap_covers
from repro.htm.cover import cover
from repro.sphere.regions import Cap, Region
from repro.sphere.vector import Vec3
from repro.zone.index import cap_windows, unit_vectors_to_radec


@dataclass
class RangeScanStats:
    """What a spatial scan touched (fed into the engine's cost counters)."""

    candidate_rows: int = 0
    exact_rows: int = 0
    tested_rows: int = 0
    full_ranges: int = 0
    partial_ranges: int = 0


@dataclass
class SpatialCandidates:
    """Result of a spatial index probe: row positions plus testing needs.

    ``exact`` rows are inside the region for sure (from fully-covered
    trixels); ``candidates`` rows need an individual geometric test (from
    partially-covered trixels).
    """

    exact: List[int] = field(default_factory=list)
    candidates: List[int] = field(default_factory=list)
    stats: RangeScanStats = field(default_factory=RangeScanStats)


def spatial_probe(
    table: Table, region: Region, *, limit: Optional[int] = None
) -> SpatialCandidates:
    """Probe a table's HTM entries with a region cover.

    ``limit`` is an epoch visibility watermark: row positions at or past
    it are invisible to the probing snapshot and are skipped. Storage is
    append-only, so the sorted HTM entries stay valid for every epoch —
    filtering by position is exact.
    """
    if table.spatial is None:
        raise ValueError(f"table {table.name!r} is not spatially indexed")
    reg_cover = cover(region, table.spatial.htm_depth)
    entries = table.spatial_entries()
    result = SpatialCandidates()
    result.stats.full_ranges = len(reg_cover.full)
    result.stats.partial_ranges = len(reg_cover.partial)
    for lo, hi in reg_cover.full:
        for pos in _rows_in_id_range(entries, lo, hi):
            if limit is None or pos < limit:
                result.exact.append(pos)
    for lo, hi in reg_cover.partial:
        for pos in _rows_in_id_range(entries, lo, hi):
            if limit is None or pos < limit:
                result.candidates.append(pos)
    result.stats.exact_rows = len(result.exact)
    result.stats.candidate_rows = len(result.exact) + len(result.candidates)
    result.stats.tested_rows = len(result.candidates)
    return result


def batch_spatial_probe(
    table: Table, regions: Sequence[Region], *, limit: Optional[int] = None
) -> List[SpatialCandidates]:
    """Probe a table's HTM entries with many region covers at once.

    The batch companion of :func:`spatial_probe` for the vectorized
    cross-match kernel: cap covers are computed level-synchronously for
    the whole batch (see :func:`repro.htm.batch.batch_cap_covers`), the
    sorted HTM entries are materialized once as numpy arrays (see
    :meth:`Table.spatial_arrays`), and every cover range becomes a
    ``searchsorted`` slice instead of a Python bisect walk. For each
    region the returned row positions, their order, and the scan stats
    are identical to what ``spatial_probe`` produces — including under
    the same epoch-visibility ``limit``.
    """
    if table.spatial is None:
        raise ValueError(f"table {table.name!r} is not spatially indexed")
    htm_ids, row_positions = table.spatial_arrays()
    depth = table.spatial.htm_depth
    if all(type(region) is Cap for region in regions):
        covers = batch_cap_covers(list(regions), depth)
    else:
        covers = [cover(region, depth) for region in regions]
    results: List[SpatialCandidates] = []
    for reg_cover in covers:
        result = SpatialCandidates()
        result.stats.full_ranges = len(reg_cover.full)
        result.stats.partial_ranges = len(reg_cover.partial)
        for ranges, out in (
            (reg_cover.full, result.exact),
            (reg_cover.partial, result.candidates),
        ):
            for lo, hi in ranges:
                seg = _array_rows_in_id_range(
                    htm_ids, row_positions, lo, hi, limit
                )
                if seg.size:
                    out.extend(seg.tolist())
        result.stats.exact_rows = len(result.exact)
        result.stats.candidate_rows = len(result.exact) + len(result.candidates)
        result.stats.tested_rows = len(result.candidates)
        results.append(result)
    return results


def _rows_in_id_range(
    entries: List[Tuple[int, int]], lo: int, hi: int
) -> Iterator[int]:
    """Row positions whose htm_id falls in the inclusive [lo, hi] id range.

    The bisect is seeded with the 1-tuple ``(lo,)``, which compares below
    every ``(lo, pos)`` pair no matter what ``pos`` is — unlike the old
    ``(lo, -1)`` sentinel, this makes no assumption about the range of row
    positions. The inclusive-``hi`` semantics here and in
    :func:`_array_rows_in_id_range` must stay in lockstep: both back the
    same cover ranges, one over the entry list, one over the parallel
    arrays of :meth:`Table.spatial_arrays`.
    """
    start = bisect.bisect_left(entries, (lo,))
    for i in range(start, len(entries)):
        hid, pos = entries[i]
        if hid > hi:
            break
        yield pos


def _array_rows_in_id_range(
    htm_ids: np.ndarray,
    row_positions: np.ndarray,
    lo: int,
    hi: int,
    limit: Optional[int],
) -> np.ndarray:
    """Array twin of :func:`_rows_in_id_range`, with epoch filtering.

    Selects the positions whose htm_id lies in the inclusive [lo, hi]
    range via two ``searchsorted`` probes, then drops rows at or past the
    epoch-visibility watermark ``limit``.
    """
    start = int(np.searchsorted(htm_ids, lo, side="left"))
    stop = int(np.searchsorted(htm_ids, hi, side="right"))
    if stop <= start:
        return _EMPTY_POSITIONS
    seg = row_positions[start:stop]
    if limit is not None:
        seg = seg[seg < limit]
    return seg


_EMPTY_POSITIONS = np.empty(0, dtype=np.int64)


def batch_zone_probe(
    table: Table,
    centers: np.ndarray,
    radii_rad: np.ndarray,
    *,
    zone_height_deg: Optional[float] = None,
    limit: Optional[int] = None,
) -> List[np.ndarray]:
    """Zone-window row candidates for a batch of caps, one array per cap.

    ``centers`` is an ``(m, 3)`` unit-vector matrix, ``radii_rad`` the
    per-cap search radii. Each returned array holds the row positions
    (ascending) whose zone/RA bucket intersects the cap's dec/RA window —
    a superset of the cap itself, epoch-filtered by ``limit`` exactly like
    :func:`batch_spatial_probe`. Callers apply the exact geometric test.
    """
    if table.spatial is None:
        raise ValueError(f"table {table.name!r} is not spatially indexed")
    m = len(radii_rad)
    if zone_height_deg is None:
        za = table.zone_arrays()
    else:
        za = table.zone_arrays(zone_height_deg)
    ra_c, dec_c = unit_vectors_to_radec(centers)
    dec_lo, dec_hi, halfwidth = cap_windows(ra_c, dec_c, radii_rad)
    pair_t, pair_i = za.window_pairs(dec_lo, dec_hi, ra_c, halfwidth)
    if limit is not None:
        keep = pair_i < limit
        pair_t = pair_t[keep]
        pair_i = pair_i[keep]
    if pair_t.size == 0:
        return [_EMPTY_POSITIONS for _ in range(m)]
    order = np.lexsort((pair_i, pair_t))
    pair_t = pair_t[order]
    pair_i = pair_i[order]
    bounds = np.searchsorted(pair_t, np.arange(m + 1, dtype=np.int64))
    return [pair_i[bounds[i]:bounds[i + 1]] for i in range(m)]


def zone_probe(
    table: Table,
    center: Vec3,
    radius_rad: float,
    *,
    zone_height_deg: Optional[float] = None,
    limit: Optional[int] = None,
) -> List[int]:
    """Single-cap :func:`batch_zone_probe`: ascending row positions."""
    centers = np.asarray([center], dtype=np.float64)
    radii = np.asarray([radius_rad], dtype=np.float64)
    (rows,) = batch_zone_probe(
        table, centers, radii, zone_height_deg=zone_height_deg, limit=limit
    )
    return rows.tolist()
