"""Table schemas."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.db.types import ColumnType
from repro.errors import SchemaError

_VALID_FIRST = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")


def _check_identifier(name: str, what: str) -> str:
    if not name or name[0] not in _VALID_FIRST or not all(
        c in _VALID_FIRST or c.isdigit() for c in name
    ):
        raise SchemaError(f"invalid {what} name {name!r}")
    return name


@dataclass(frozen=True)
class Column:
    """One column: name, type, nullability."""

    name: str
    ctype: ColumnType
    nullable: bool = True

    def __post_init__(self) -> None:
        _check_identifier(self.name, "column")


class TableSchema:
    """An ordered set of columns with fast name lookup.

    Column names are matched case-insensitively, as in most SQL engines.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        _check_identifier(name, "table")
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._index: Dict[str, int] = {}
        for i, col in enumerate(self.columns):
            key = col.name.lower()
            if key in self._index:
                raise SchemaError(f"duplicate column {col.name!r} in {name!r}")
            self._index[key] = i

    def __len__(self) -> int:
        return len(self.columns)

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.ctype.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"

    @property
    def column_names(self) -> List[str]:
        """Column names in declaration order."""
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        """True if a column with this (case-insensitive) name exists."""
        return name.lower() in self._index

    def column_index(self, name: str) -> int:
        """Position of a column, raising :class:`SchemaError` if unknown."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def column(self, name: str) -> Column:
        """The :class:`Column` for a name."""
        return self.columns[self.column_index(name)]

    def coerce_row(self, row: Dict[str, Any] | Sequence[Any]) -> List[Any]:
        """Validate and coerce a row (mapping or positional) to storage form."""
        if isinstance(row, dict):
            lowered = {k.lower(): v for k, v in row.items()}
            unknown = set(lowered) - set(self._index)
            if unknown:
                raise SchemaError(
                    f"row has unknown column(s) {sorted(unknown)!r} "
                    f"for table {self.name!r}"
                )
            values: Iterable[Any] = (
                lowered.get(c.name.lower()) for c in self.columns
            )
        else:
            if len(row) != len(self.columns):
                raise SchemaError(
                    f"row has {len(row)} values, table {self.name!r} "
                    f"has {len(self.columns)} columns"
                )
            values = row
        return [
            col.ctype.coerce(v, nullable=col.nullable, column=col.name)
            for col, v in zip(self.columns, values)
        ]
