"""Row storage with paging and an optional HTM spatial column."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.schema import TableSchema
from repro.errors import SchemaError
from repro.htm.index import HTMIndex
from repro.sphere.coords import radec_to_vector
from repro.units import normalize_ra_deg
from repro.zone.index import DEFAULT_ZONE_HEIGHT_DEG, ZoneArrays


@dataclass(frozen=True)
class SpatialSpec:
    """Declares which columns carry a position and at what HTM depth to index.

    The column names are per-archive (``ra``/``dec`` at one node,
    ``right_ascension``/``declination`` at another) — heterogeneity the
    SkyNode wrapper hides from the Portal.
    """

    ra_column: str
    dec_column: str
    htm_depth: int = 12


class Table:
    """One table: typed rows stored in fixed-size pages.

    If a :class:`SpatialSpec` is attached, every row gets a precomputed HTM
    trixel id, and :meth:`spatial_entries` exposes the sorted (htm_id, row)
    pairs the spatial index scans. Two columnar companions back the
    vectorized cross-match kernel: :meth:`position_matrix` (an ``(n, 3)``
    float64 unit-vector matrix) and :meth:`spatial_arrays` (the sorted HTM
    entries as parallel numpy arrays). Both are built lazily and
    invalidated on insert/truncate, exactly like the sorted entry list.

    Versioned snapshots: storage is append-only, so an *epoch* is just a
    visible row-count watermark. ``_epoch_marks`` holds ``[epoch, count]``
    pairs in ascending epoch order; a query pinned at epoch ``e`` sees the
    row prefix of the newest mark whose epoch is ``<= e``. Plain inserts
    extend the latest mark (rows become visible at the current epoch —
    the pre-ingest behaviour); the live-ingest commit path calls
    :meth:`stamp_epoch` first so the new rows are visible only from the
    freshly committed epoch onward. Since row values never change and
    visibility is a prefix, every derived structure (sorted HTM entries,
    columnar arrays, the position matrix) stays valid for pinned reads —
    readers just ignore row positions at or past their watermark.
    """

    def __init__(
        self,
        schema: TableSchema,
        *,
        page_size: int = 64,
        spatial: Optional[SpatialSpec] = None,
        temporary: bool = False,
    ) -> None:
        if page_size < 1:
            raise SchemaError(f"page_size must be >= 1, got {page_size}")
        self.schema = schema
        self.page_size = page_size
        self.spatial = spatial
        self.temporary = temporary
        # Spatial column positions are resolved once here, not per insert.
        if spatial is not None:
            self._ra_idx: Optional[int] = schema.column_index(spatial.ra_column)
            self._dec_idx: Optional[int] = schema.column_index(spatial.dec_column)
        else:
            self._ra_idx = None
            self._dec_idx = None
        self._rows: List[List[Any]] = []
        self._htm_ids: List[int] = []
        self._positions: List[Tuple[float, float, float]] = []
        #: Epoch visibility watermarks: [epoch, visible_count], ascending.
        self._epoch_marks: List[List[int]] = [[0, 0]]
        self._htm = HTMIndex(spatial.htm_depth) if spatial else None
        self._spatial_sorted: Optional[List[Tuple[int, int]]] = None
        self._spatial_arrays: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._position_matrix: Optional[np.ndarray] = None
        #: Zone index caches keyed by zone height (degrees); built lazily
        #: like the HTM companions, invalidated together with them.
        self._zone_arrays: Dict[float, ZoneArrays] = {}

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def name(self) -> str:
        """The table name (from its schema)."""
        return self.schema.name

    @property
    def page_count(self) -> int:
        """Number of pages currently occupied."""
        return (len(self._rows) + self.page_size - 1) // self.page_size

    def page_of(self, row_pos: int) -> int:
        """Page number holding a row position."""
        return row_pos // self.page_size

    def _spatial_data(
        self, values: List[Any]
    ) -> Tuple[int, Tuple[float, float, float]]:
        """The HTM id + unit vector of one coerced row."""
        ra = values[self._ra_idx]
        dec = values[self._dec_idx]
        if ra is None or dec is None:
            raise SchemaError(
                f"spatial table {self.name!r} requires non-NULL "
                f"{self.spatial.ra_column}/{self.spatial.dec_column}"
            )
        assert self._htm is not None
        vector = radec_to_vector(ra, dec)
        return self._htm.id_for(vector), vector

    def _invalidate_derived(self) -> None:
        self._spatial_sorted = None
        self._spatial_arrays = None
        self._position_matrix = None
        self._zone_arrays.clear()

    def insert(self, row: Dict[str, Any] | Sequence[Any]) -> int:
        """Insert one row (mapping or positional); returns its row position."""
        values = self.schema.coerce_row(row)
        pos = len(self._rows)
        if self.spatial is not None:
            htm_id, vector = self._spatial_data(values)
            self._htm_ids.append(htm_id)
            self._positions.append(vector)
            self._invalidate_derived()
        self._rows.append(values)
        self._epoch_marks[-1][1] = len(self._rows)
        return pos

    def insert_many(self, rows: Sequence[Dict[str, Any] | Sequence[Any]]) -> int:
        """Bulk insert; returns the number inserted.

        The bulk path coerces and ingests every row first and invalidates
        the derived spatial structures (sorted HTM entries, columnar
        arrays) exactly once at the end, so a bulk load pays one deferred
        rebuild instead of one per row.
        """
        coerced = [self.schema.coerce_row(row) for row in rows]
        if self.spatial is not None:
            # Validate and compute spatial data for the whole batch before
            # mutating anything, so a bad row leaves the table untouched.
            spatial_data = [self._spatial_data(values) for values in coerced]
            self._htm_ids.extend(htm_id for htm_id, _ in spatial_data)
            self._positions.extend(vector for _, vector in spatial_data)
            self._invalidate_derived()
        self._rows.extend(coerced)
        self._epoch_marks[-1][1] = len(self._rows)
        return len(coerced)

    # -- epoch visibility --------------------------------------------------------

    @property
    def latest_epoch(self) -> int:
        """The newest epoch this table has a visibility mark for."""
        return self._epoch_marks[-1][0]

    def stamp_epoch(self, epoch: int) -> None:
        """Freeze visibility: rows inserted after this call are visible
        only from ``epoch`` onward (earlier epochs keep the current count).
        """
        last = self._epoch_marks[-1]
        if epoch < last[0]:
            raise SchemaError(
                f"cannot stamp epoch {epoch} on table {self.name!r}; "
                f"already at epoch {last[0]}"
            )
        if epoch == last[0]:
            last[1] = len(self._rows)
        else:
            self._epoch_marks.append([epoch, len(self._rows)])

    def visible_count(self, epoch: Optional[int]) -> int:
        """Rows visible at an epoch (``None`` = everything, unversioned)."""
        if epoch is None:
            return len(self._rows)
        for mark_epoch, count in reversed(self._epoch_marks):
            if mark_epoch <= epoch:
                return count
        return 0

    def drop_epochs_before(self, oldest: int) -> None:
        """Forget watermarks older than ``oldest`` (epoch GC).

        The newest mark at or before ``oldest`` is retained so reads
        pinned exactly at the floor still resolve; everything earlier is
        unpinnable and its memory is released.
        """
        keep_from = 0
        for i, (mark_epoch, _) in enumerate(self._epoch_marks):
            if mark_epoch <= oldest:
                keep_from = i
        if keep_from:
            self._epoch_marks = self._epoch_marks[keep_from:]

    def row(self, row_pos: int) -> List[Any]:
        """The raw row values at a position."""
        return self._rows[row_pos]

    def htm_id(self, row_pos: int) -> int:
        """The precomputed HTM id of a row (spatial tables only)."""
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        return self._htm_ids[row_pos]

    def iter_positions(self, epoch: Optional[int] = None) -> Iterator[int]:
        """Row positions in storage order (a full scan).

        With ``epoch`` given, only positions visible at that epoch — the
        stored prefix up to its watermark.
        """
        return iter(range(self.visible_count(epoch)))

    def spatial_entries(self) -> List[Tuple[int, int]]:
        """Sorted (htm_id, row_pos) pairs; rebuilt lazily after inserts."""
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        if self._spatial_sorted is None:
            self._spatial_sorted = sorted(
                zip(self._htm_ids, range(len(self._rows)))
            )
        return self._spatial_sorted

    def spatial_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The sorted HTM entries as parallel ``(htm_ids, row_positions)``.

        Both are int64 numpy arrays in the exact order of
        :meth:`spatial_entries`, so a searchsorted slice visits rows in
        the same order the scalar bisect scan yields them.
        """
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        if self._spatial_arrays is None:
            entries = self.spatial_entries()
            if entries:
                pairs = np.asarray(entries, dtype=np.int64)
                self._spatial_arrays = (
                    np.ascontiguousarray(pairs[:, 0]),
                    np.ascontiguousarray(pairs[:, 1]),
                )
            else:
                empty = np.empty(0, dtype=np.int64)
                self._spatial_arrays = (empty, empty)
        return self._spatial_arrays

    def position_matrix(self) -> np.ndarray:
        """The ``(n, 3)`` float64 unit-vector position of every row.

        Row ``i`` of the matrix is exactly ``radec_to_vector(ra, dec)`` of
        row position ``i`` — the same floats the scalar path computes per
        candidate — so vectorized and scalar chi-squared evaluations agree
        bitwise. Built lazily, invalidated on insert/truncate.
        """
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        if self._position_matrix is None:
            matrix = np.empty((len(self._positions), 3), dtype=np.float64)
            for i, (x, y, z) in enumerate(self._positions):
                matrix[i, 0] = x
                matrix[i, 1] = y
                matrix[i, 2] = z
            self._position_matrix = matrix
        return self._position_matrix

    def zone_arrays(
        self, zone_height_deg: float = DEFAULT_ZONE_HEIGHT_DEG
    ) -> ZoneArrays:
        """The zone index over every stored row, sorted by ``(zone, ra)``.

        Zone ids come from the raw spatial-column values (RA normalized to
        [0, 360)); ``order`` maps back to row positions. Storage is
        append-only, so — like :meth:`spatial_arrays` — one build stays
        valid for every epoch: readers filter positions against their
        visibility watermark. Cached per zone height, invalidated on
        insert/truncate alongside the HTM companions.
        """
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        cached = self._zone_arrays.get(zone_height_deg)
        if cached is None:
            ra = np.asarray(
                [normalize_ra_deg(row[self._ra_idx]) for row in self._rows],
                dtype=np.float64,
            )
            dec = np.asarray(
                [row[self._dec_idx] for row in self._rows], dtype=np.float64
            )
            cached = ZoneArrays.build(ra, dec, zone_height_deg)
            self._zone_arrays[zone_height_deg] = cached
        return cached

    def position_of(self, row_pos: int) -> Tuple[float, float, float]:
        """The precomputed unit vector of a row (spatial tables only)."""
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        return self._positions[row_pos]

    def truncate(self) -> None:
        """Delete all rows."""
        self._rows.clear()
        self._htm_ids.clear()
        self._positions.clear()
        self._epoch_marks = [[self._epoch_marks[-1][0], 0]]
        self._invalidate_derived()
