"""Row storage with paging and an optional HTM spatial column."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.db.schema import TableSchema
from repro.errors import SchemaError
from repro.htm.index import HTMIndex
from repro.sphere.coords import radec_to_vector


@dataclass(frozen=True)
class SpatialSpec:
    """Declares which columns carry a position and at what HTM depth to index.

    The column names are per-archive (``ra``/``dec`` at one node,
    ``right_ascension``/``declination`` at another) — heterogeneity the
    SkyNode wrapper hides from the Portal.
    """

    ra_column: str
    dec_column: str
    htm_depth: int = 12


class Table:
    """One table: typed rows stored in fixed-size pages.

    If a :class:`SpatialSpec` is attached, every row gets a precomputed HTM
    trixel id, and :meth:`spatial_entries` exposes the sorted (htm_id, row)
    pairs the spatial index scans.
    """

    def __init__(
        self,
        schema: TableSchema,
        *,
        page_size: int = 64,
        spatial: Optional[SpatialSpec] = None,
        temporary: bool = False,
    ) -> None:
        if page_size < 1:
            raise SchemaError(f"page_size must be >= 1, got {page_size}")
        if spatial is not None:
            schema.column_index(spatial.ra_column)
            schema.column_index(spatial.dec_column)
        self.schema = schema
        self.page_size = page_size
        self.spatial = spatial
        self.temporary = temporary
        self._rows: List[List[Any]] = []
        self._htm_ids: List[int] = []
        self._htm = HTMIndex(spatial.htm_depth) if spatial else None
        self._spatial_sorted: Optional[List[Tuple[int, int]]] = None

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def name(self) -> str:
        """The table name (from its schema)."""
        return self.schema.name

    @property
    def page_count(self) -> int:
        """Number of pages currently occupied."""
        return (len(self._rows) + self.page_size - 1) // self.page_size

    def page_of(self, row_pos: int) -> int:
        """Page number holding a row position."""
        return row_pos // self.page_size

    def insert(self, row: Dict[str, Any] | Sequence[Any]) -> int:
        """Insert one row (mapping or positional); returns its row position."""
        values = self.schema.coerce_row(row)
        pos = len(self._rows)
        self._rows.append(values)
        if self.spatial is not None:
            ra = values[self.schema.column_index(self.spatial.ra_column)]
            dec = values[self.schema.column_index(self.spatial.dec_column)]
            if ra is None or dec is None:
                raise SchemaError(
                    f"spatial table {self.name!r} requires non-NULL "
                    f"{self.spatial.ra_column}/{self.spatial.dec_column}"
                )
            assert self._htm is not None
            self._htm_ids.append(self._htm.id_for(radec_to_vector(ra, dec)))
            self._spatial_sorted = None
        return pos

    def insert_many(self, rows: Sequence[Dict[str, Any] | Sequence[Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        for row in rows:
            self.insert(row)
        return len(rows)

    def row(self, row_pos: int) -> List[Any]:
        """The raw row values at a position."""
        return self._rows[row_pos]

    def htm_id(self, row_pos: int) -> int:
        """The precomputed HTM id of a row (spatial tables only)."""
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        return self._htm_ids[row_pos]

    def iter_positions(self) -> Iterator[int]:
        """All row positions in storage order (a full scan)."""
        return iter(range(len(self._rows)))

    def spatial_entries(self) -> List[Tuple[int, int]]:
        """Sorted (htm_id, row_pos) pairs; rebuilt lazily after inserts."""
        if self.spatial is None:
            raise SchemaError(f"table {self.name!r} has no spatial column")
        if self._spatial_sorted is None:
            self._spatial_sorted = sorted(
                zip(self._htm_ids, range(len(self._rows)))
            )
        return self._spatial_sorted

    def truncate(self) -> None:
        """Delete all rows."""
        self._rows.clear()
        self._htm_ids.clear()
        self._spatial_sorted = None
