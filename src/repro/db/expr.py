"""WHERE/SELECT expression evaluation over table rows.

The evaluator implements a simplified SQL semantics:

* NULL propagates through arithmetic; any comparison involving NULL is
  false; AND/OR treat NULL as false (two-valued logic, documented shortcut).
* Bare identifiers that do not resolve to a column are looked up in the
  database's *named constants* (the sample query's ``O.type = GALAXY`` uses
  the astronomy constant GALAXY).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.errors import QueryError
from repro.sql.ast import (
    AreaClause,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    IsNull,
    Literal,
    PolygonClause,
    Star,
    UnaryOp,
    XMatchClause,
)


class RowContext:
    """Column values for one row, addressable bare or alias-qualified."""

    def __init__(self, constants: Optional[Mapping[str, Any]] = None) -> None:
        self._values: Dict[str, Any] = {}
        self._constants = {k.lower(): v for k, v in (constants or {}).items()}

    def bind(self, alias: Optional[str], column: str, value: Any) -> None:
        """Bind one column value (under both bare and qualified keys)."""
        self._values[column.lower()] = value
        if alias:
            self._values[f"{alias.lower()}.{column.lower()}"] = value

    def lookup(self, ref: ColumnRef) -> Any:
        """Resolve a column reference, falling back to named constants."""
        if ref.qualifier:
            key = f"{ref.qualifier.lower()}.{ref.name.lower()}"
            if key in self._values:
                return self._values[key]
            raise QueryError(f"unknown column {ref!s}")
        key = ref.name.lower()
        if key in self._values:
            return self._values[key]
        if key in self._constants:
            return self._constants[key]
        raise QueryError(f"unknown column or constant {ref.name!r}")


def evaluate(expr: Expr, ctx: RowContext) -> Any:
    """Evaluate an expression against one row."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return ctx.lookup(expr)
    if isinstance(expr, UnaryOp):
        return _unary(expr, ctx)
    if isinstance(expr, BinaryOp):
        return _binary(expr, ctx)
    if isinstance(expr, FuncCall):
        return _function(expr, ctx)
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, ctx)
        return (value is not None) if expr.negated else (value is None)
    if isinstance(expr, (AreaClause, PolygonClause, XMatchClause)):
        raise QueryError(
            f"{type(expr).__name__} cannot be evaluated per-row; it must be "
            "handled by the spatial scan / cross-match machinery"
        )
    if isinstance(expr, Star):
        raise QueryError("'*' is only valid inside SELECT or COUNT(*)")
    raise QueryError(f"cannot evaluate expression node {expr!r}")


def is_true(value: Any) -> bool:
    """SQL-ish truthiness: NULL counts as false."""
    return value is True


def _unary(expr: UnaryOp, ctx: RowContext) -> Any:
    value = evaluate(expr.operand, ctx)
    if expr.op == "NOT":
        if value is None:
            return None
        if isinstance(value, bool):
            return not value
        raise QueryError(f"NOT applied to non-boolean {value!r}")
    if expr.op == "-":
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise QueryError(f"unary minus applied to non-number {value!r}")
        return -value
    raise QueryError(f"unknown unary operator {expr.op!r}")


def _binary(expr: BinaryOp, ctx: RowContext) -> Any:
    op = expr.op
    if op == "AND":
        left = evaluate(expr.left, ctx)
        if not is_true(left):
            return False
        return is_true(evaluate(expr.right, ctx))
    if op == "OR":
        left = evaluate(expr.left, ctx)
        if is_true(left):
            return True
        return is_true(evaluate(expr.right, ctx))

    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)
    if op in ("+", "-", "*", "/"):
        return _arith(op, left, right)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _compare(op, left, right)
    raise QueryError(f"unknown binary operator {op!r}")


def _arith(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return None
    if not _is_number(left) or not _is_number(right):
        raise QueryError(
            f"arithmetic {op!r} needs numbers, got {left!r} and {right!r}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if right == 0:
        raise QueryError("division by zero")
    return left / right


def _compare(op: str, left: Any, right: Any) -> Any:
    if left is None or right is None:
        return False
    if _is_number(left) and _is_number(right):
        pass  # numbers compare across int/float
    elif type(left) is not type(right):
        raise QueryError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _function(expr: FuncCall, ctx: RowContext) -> Any:
    name = expr.name.upper()
    if name == "COUNT":
        raise QueryError("COUNT(*) is an aggregate; handled by the engine")
    if name == "ABS":
        value = evaluate(expr.args[0], ctx)
        if value is None:
            return None
        if not _is_number(value):
            raise QueryError(f"ABS applied to non-number {value!r}")
        return abs(value)
    raise QueryError(f"unknown function {expr.name!r}")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
