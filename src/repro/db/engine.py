"""The per-archive database engine: DDL, DML, single-table SELECT execution.

Deliberately scoped to what a SkyNode needs (the paper's wrappers push only
single-archive queries into each DBMS): CREATE/DROP (temp) tables, inserts,
SELECT with WHERE (including an AREA spatial conjunct), COUNT(*), LIMIT, and
stored procedures. Multi-archive semantics (XMATCH) live above the engine in
:mod:`repro.xmatch` / :mod:`repro.portal`, exactly as in the paper where the
cross match is a stored procedure plus service logic, not a DBMS feature.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.db.buffer import BufferPool
from repro.db.expr import RowContext, evaluate, is_true
from repro.db.indexes import spatial_probe
from repro.db.schema import Column, TableSchema
from repro.db.table import SpatialSpec, Table
from repro.errors import QueryError, SchemaError, StaleEpochError
from repro.sphere.coords import radec_to_vector
from repro.sphere.regions import Region
from repro.sql.area import is_area, region_for
from repro.sql.ast import (
    AreaLike,
    ColumnRef,
    Expr,
    FuncCall,
    OrderItem,
    Query,
    SelectItem,
    Star,
    XMatchClause,
    and_together,
    conjuncts,
)
from repro.sql.parser import parse_query

#: Named constants available to every archive (``O.type = GALAXY``).
ASTRO_CONSTANTS: Dict[str, Any] = {
    "GALAXY": "GALAXY",
    "STAR": "STAR",
    "QSO": "QSO",
    "UNKNOWN": "UNKNOWN",
}


@dataclass
class QueryStats:
    """Cost counters for one executed query."""

    rows_examined: int = 0
    rows_returned: int = 0
    logical_reads: int = 0
    physical_reads: int = 0
    used_spatial_index: bool = False
    rows_tested_geometrically: int = 0


@dataclass
class ResultSet:
    """Columns + rows + per-query cost stats."""

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    stats: QueryStats = field(default_factory=QueryStats)

    def __len__(self) -> int:
        return len(self.rows)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a one-row, one-column result (e.g. COUNT(*))."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]


def _dedupe(rows, keys):
    """DISTINCT: keep each projected row's first occurrence (and its key)."""
    seen = set()
    out_rows, out_keys = [], []
    for i, row in enumerate(rows):
        if row in seen:
            continue
        seen.add(row)
        out_rows.append(row)
        if keys:
            out_keys.append(keys[i])
    return out_rows, out_keys


class _SortKey:
    """ORDER BY key wrapper: NULLs sort first; DESC flips the comparison."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool) -> None:
        self.value = value
        self.descending = descending

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SortKey):
            return NotImplemented
        return self.value == other.value

    def __lt__(self, other: "_SortKey") -> bool:
        a, b = self.value, other.value
        if a == b:
            return False
        if a is None:
            before = True
        elif b is None:
            before = False
        else:
            try:
                before = a < b
            except TypeError:
                raise QueryError(
                    f"ORDER BY cannot compare {type(a).__name__} "
                    f"with {type(b).__name__}"
                ) from None
        return not before if self.descending else before


ProcedureFn = Callable[..., Any]


class Database:
    """One autonomous archive's DBMS."""

    def __init__(
        self,
        name: str,
        *,
        dialect: str = "ansi",
        page_size: int = 64,
        buffer_pages: int = 1024,
        constants: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.dialect = dialect
        self.page_size = page_size
        self.buffer = BufferPool(buffer_pages)
        self.constants = dict(ASTRO_CONSTANTS)
        if constants:
            self.constants.update(constants)
        self._tables: Dict[str, Table] = {}
        self._procedures: Dict[str, ProcedureFn] = {}
        self._temp_counter = itertools.count(1)
        #: Benchmarks flip this off to measure full scans against HTM scans.
        self.use_spatial_index = True
        #: Snapshot bookkeeping: seed data belongs to epoch 0; every live
        #: ingest commit advances ``committed_epoch`` by one, and epoch GC
        #: raises ``oldest_epoch`` (the oldest still-pinnable snapshot).
        self.committed_epoch = 0
        self.oldest_epoch = 0

    # -- DDL -----------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[Column],
        *,
        spatial: Optional[SpatialSpec] = None,
        temporary: bool = False,
    ) -> Table:
        """Create a table; raises :class:`SchemaError` if it already exists."""
        key = name.lower()
        if key in self._tables:
            raise SchemaError(f"table {name!r} already exists in {self.name!r}")
        table = Table(
            TableSchema(name, columns),
            page_size=self.page_size,
            spatial=spatial,
            temporary=temporary,
        )
        self._tables[key] = table
        return table

    def create_temp_table(
        self,
        prefix: str,
        columns: Sequence[Column],
        *,
        spatial: Optional[SpatialSpec] = None,
    ) -> Table:
        """Create a uniquely named temporary table (paper Section 5.3)."""
        name = f"{prefix}_tmp{next(self._temp_counter)}"
        return self.create_table(name, columns, spatial=spatial, temporary=True)

    def drop_table(self, name: str) -> None:
        """Drop a table and evict its buffered pages."""
        key = name.lower()
        if key not in self._tables:
            raise SchemaError(f"table {name!r} does not exist in {self.name!r}")
        del self._tables[key]
        self.buffer.invalidate_table(name)

    def has_table(self, name: str) -> bool:
        """True if the table exists."""
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        """Look up a table, raising :class:`SchemaError` if missing."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(
                f"table {name!r} does not exist in {self.name!r}"
            ) from None

    def table_names(self) -> List[str]:
        """Names of all (non-temporary) tables."""
        return [t.name for t in self._tables.values() if not t.temporary]

    # -- DML -----------------------------------------------------------------

    def insert(
        self, table_name: str, rows: Iterable[Dict[str, Any] | Sequence[Any]]
    ) -> int:
        """Insert rows into a table; returns the count inserted.

        Routed through the table's bulk path: one deferred spatial-index
        rebuild per statement instead of one invalidation per row.
        """
        table = self.table(table_name)
        return table.insert_many(list(rows))

    # -- snapshot epochs -------------------------------------------------------

    def resolve_epoch(self, epoch: Optional[int]) -> Optional[int]:
        """Validate a pinned epoch against this archive's snapshot window.

        ``None`` (unversioned: read everything) passes through. Otherwise
        the epoch must be committed here (a replica lagging behind an
        in-doubt 2PC decision cannot serve the future) and not yet
        garbage-collected.
        """
        if epoch is None:
            return None
        if epoch > self.committed_epoch:
            raise StaleEpochError(
                f"epoch {epoch} is not committed at {self.name!r} "
                f"(committed: {self.committed_epoch})"
            )
        if epoch < self.oldest_epoch:
            raise StaleEpochError(
                f"epoch {epoch} was garbage-collected at {self.name!r} "
                f"(oldest pinnable: {self.oldest_epoch})"
            )
        return epoch

    def apply_epoch(
        self,
        staged: Sequence[Tuple[str, Sequence[Dict[str, Any] | Sequence[Any]]]],
    ) -> int:
        """Apply staged ingest batches as one new epoch; returns its number.

        Every batch is coerced against its table schema *before* any table
        is touched, so a bad row leaves the whole database at the old
        epoch. Then each affected table is stamped with the new epoch
        first and filled second: readers pinned at or below the old epoch
        keep their exact row prefix while the new rows become visible only
        from the new epoch onward.
        """
        new_epoch = self.committed_epoch + 1
        coerced: List[Tuple[Table, List[List[Any]]]] = []
        for table_name, rows in staged:
            table = self.table(table_name)
            coerced.append(
                (table, [table.schema.coerce_row(row) for row in rows])
            )
        stamped = set()
        for table, rows in coerced:
            if table.name not in stamped:
                table.stamp_epoch(new_epoch)
                stamped.add(table.name)
            table.insert_many(rows)
        self.committed_epoch = new_epoch
        return new_epoch

    def gc_epochs(self, keep: int) -> int:
        """Garbage-collect snapshots, keeping the newest ``keep`` epochs.

        Raises the pinnable floor to ``committed_epoch - keep`` (never
        below zero, never backwards) and drops each table's unpinnable
        watermarks. Returns the new oldest pinnable epoch.
        """
        if keep < 0:
            raise QueryError(f"gc_epochs needs keep >= 0, got {keep}")
        floor = max(0, self.committed_epoch - keep)
        if floor > self.oldest_epoch:
            self.oldest_epoch = floor
            for table in self._tables.values():
                table.drop_epochs_before(floor)
        return self.oldest_epoch

    # -- query execution -------------------------------------------------------

    def execute(
        self, query: Query | str, *, epoch: Optional[int] = None
    ) -> ResultSet:
        """Execute a single-table SELECT (text or AST).

        ``epoch`` pins the read to a committed snapshot: only rows visible
        at that epoch are scanned, matched, and returned. ``None`` reads
        the live table (everything), preserving pre-ingest behaviour.
        """
        if isinstance(query, str):
            query = parse_query(query)
        if len(query.tables) != 1:
            raise QueryError(
                "the archive engine executes single-table queries; "
                "multi-archive joins are the federation's job"
            )
        epoch = self.resolve_epoch(epoch)
        table_ref = query.tables[0]
        table = self.table(table_ref.table)
        alias = table_ref.effective_alias

        area, residual = self._split_where(query.where)
        region = self._region_for(area, table) if area is not None else None

        stats = QueryStats()
        before = (self.buffer.stats.logical_reads, self.buffer.stats.physical_reads)

        from repro.db.aggregates import is_aggregate_query

        if self._is_count_star(query.items):
            count = sum(
                1 for _ in self._matching_positions(
                    table, alias, region, residual, stats, epoch=epoch
                )
            )
            columns = [query.items[0].alias or "count"]
            rows: List[Tuple[Any, ...]] = [(count,)]
        elif is_aggregate_query(query):
            columns, rows = self._execute_grouped(
                query, table, alias, region, residual, stats, epoch=epoch
            )
        else:
            columns = self._output_columns(query.items, table)
            rows = []
            keys: List[Tuple[Any, ...]] = []
            can_stop_early = (
                query.limit is not None
                and not query.order_by
                and not query.distinct
            )
            for pos in self._matching_positions(
                table, alias, region, residual, stats, epoch=epoch
            ):
                ctx = self._context_for(table, alias, pos)
                rows.append(self._project(query.items, table, ctx))
                if query.order_by:
                    keys.append(self._order_key(query.order_by, ctx))
                if can_stop_early and len(rows) >= query.limit:
                    break
            if query.distinct:
                rows, keys = _dedupe(rows, keys)
            if query.order_by:
                rows = [
                    row for _, row in sorted(
                        zip(keys, rows), key=lambda pair: pair[0]
                    )
                ]
            if query.limit is not None:
                rows = rows[: query.limit]

        stats.rows_returned = len(rows)
        stats.logical_reads = self.buffer.stats.logical_reads - before[0]
        stats.physical_reads = self.buffer.stats.physical_reads - before[1]
        return ResultSet(columns=columns, rows=rows, stats=stats)

    def _execute_grouped(
        self,
        query: Query,
        table: Table,
        alias: str,
        region: Optional[Region],
        residual: Optional[Expr],
        stats: QueryStats,
        *,
        epoch: Optional[int] = None,
    ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        """The aggregate / GROUP BY / HAVING execution path."""
        from repro.db.aggregates import GroupedAccumulator, evaluate_grouped
        from repro.db.expr import is_true as _is_true
        from repro.sql.printer import to_sql

        accumulator = GroupedAccumulator(query)
        for pos in self._matching_positions(
            table, alias, region, residual, stats, epoch=epoch
        ):
            accumulator.feed(self._context_for(table, alias, pos))

        groups = accumulator.finished_groups()
        if query.having is not None:
            groups = [
                g for g in groups
                if _is_true(
                    evaluate_grouped(query.having, g, query.group_by)
                )
            ]

        columns: List[str] = []
        for item in query.items:
            if isinstance(item.expr, Star):
                raise QueryError("SELECT * is not valid in a grouped query")
            if item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                columns.append(str(item.expr))
            else:
                columns.append(to_sql(item.expr))

        rows = [
            tuple(
                evaluate_grouped(item.expr, group, query.group_by)
                for item in query.items
            )
            for group in groups
        ]
        if query.distinct:
            deduped_rows, deduped_groups = [], []
            seen = set()
            for row, group in zip(rows, groups):
                marker = tuple(row)
                if marker not in seen:
                    seen.add(marker)
                    deduped_rows.append(row)
                    deduped_groups.append(group)
            rows, groups = deduped_rows, deduped_groups
        if query.order_by:
            keys = [
                tuple(
                    _SortKey(
                        evaluate_grouped(order.expr, group, query.group_by),
                        order.descending,
                    )
                    for order in query.order_by
                )
                for group in groups
            ]
            rows = [
                row for _, row in sorted(zip(keys, rows), key=lambda p: p[0])
            ]
        if query.limit is not None:
            rows = rows[: query.limit]
        return columns, rows

    def count_rows(
        self, table_name: str, *, epoch: Optional[int] = None
    ) -> int:
        """Row count without touching the buffer pool (catalog metadata)."""
        return self.table(table_name).visible_count(self.resolve_epoch(epoch))

    # -- stored procedures -----------------------------------------------------

    def register_procedure(self, name: str, fn: ProcedureFn) -> None:
        """Register a stored procedure (callable taking this db first)."""
        key = name.lower()
        if key in self._procedures:
            raise SchemaError(f"procedure {name!r} already registered")
        self._procedures[key] = fn

    def call_procedure(self, name: str, **params: Any) -> Any:
        """Invoke a stored procedure by name."""
        try:
            fn = self._procedures[name.lower()]
        except KeyError:
            raise QueryError(f"unknown procedure {name!r}") from None
        return fn(self, **params)

    def has_procedure(self, name: str) -> bool:
        """True if a stored procedure with this name is registered."""
        return name.lower() in self._procedures

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _split_where(
        where: Optional[Expr],
    ) -> Tuple[Optional[AreaLike], Optional[Expr]]:
        """Separate the AREA conjunct from the rest of the WHERE tree."""
        area: Optional[AreaLike] = None
        rest: List[Expr] = []
        for conjunct in conjuncts(where):
            if is_area(conjunct):
                if area is not None:
                    raise QueryError("multiple AREA clauses")
                area = conjunct
            elif isinstance(conjunct, XMatchClause):
                raise QueryError(
                    "XMATCH reached the archive engine; the Portal should "
                    "have decomposed it"
                )
            else:
                rest.append(conjunct)
        return area, and_together(tuple(rest))

    @staticmethod
    def _region_for(area: AreaLike, table: Table) -> Region:
        if table.spatial is None:
            raise QueryError(
                f"AREA clause on table {table.name!r} which has no "
                "spatial columns"
            )
        return region_for(area)

    def _matching_positions(
        self,
        table: Table,
        alias: str,
        region: Optional[Region],
        residual: Optional[Expr],
        stats: QueryStats,
        *,
        epoch: Optional[int] = None,
    ) -> Iterable[int]:
        """Yield row positions passing the spatial and residual predicates.

        With an ``epoch`` pinned, rows past its visibility watermark are
        excluded from both the spatial-index and full-scan paths.
        """
        limit = None if epoch is None else table.visible_count(epoch)
        if region is not None and table.spatial is not None and self.use_spatial_index:
            stats.used_spatial_index = True
            probe = spatial_probe(table, region, limit=limit)
            stats.rows_tested_geometrically = len(probe.candidates)
            for pos in probe.exact:
                self._touch(table, pos, stats)
                if self._residual_ok(table, alias, pos, residual):
                    yield pos
            spec = table.spatial
            ra_idx = table.schema.column_index(spec.ra_column)
            dec_idx = table.schema.column_index(spec.dec_column)
            for pos in probe.candidates:
                self._touch(table, pos, stats)
                row = table.row(pos)
                v = radec_to_vector(row[ra_idx], row[dec_idx])
                if not region.contains(v):
                    continue
                if self._residual_ok(table, alias, pos, residual):
                    yield pos
            return
        # Full scan (optionally with a geometric test when the table has
        # positions but no region/index shortcut applies).
        spec = table.spatial
        for pos in table.iter_positions(epoch):
            self._touch(table, pos, stats)
            if region is not None:
                assert spec is not None
                row = table.row(pos)
                ra = row[table.schema.column_index(spec.ra_column)]
                dec = row[table.schema.column_index(spec.dec_column)]
                stats.rows_tested_geometrically += 1
                if not region.contains(radec_to_vector(ra, dec)):
                    continue
            if self._residual_ok(table, alias, pos, residual):
                yield pos

    def _touch(self, table: Table, pos: int, stats: QueryStats) -> None:
        self.buffer.access(table.name, table.page_of(pos))
        stats.rows_examined += 1

    def _residual_ok(
        self, table: Table, alias: str, pos: int, residual: Optional[Expr]
    ) -> bool:
        if residual is None:
            return True
        ctx = self._context_for(table, alias, pos)
        return is_true(evaluate(residual, ctx))

    def _context_for(self, table: Table, alias: str, pos: int) -> RowContext:
        ctx = RowContext(self.constants)
        row = table.row(pos)
        for col, value in zip(table.schema.columns, row):
            ctx.bind(alias, col.name, value)
        return ctx

    @staticmethod
    def _order_key(
        order_by: Tuple[OrderItem, ...], ctx: RowContext
    ) -> Tuple[Any, ...]:
        return tuple(
            _SortKey(evaluate(item.expr, ctx), item.descending)
            for item in order_by
        )

    @staticmethod
    def _is_count_star(items: Tuple[SelectItem, ...]) -> bool:
        if len(items) != 1:
            return False
        expr = items[0].expr
        return (
            isinstance(expr, FuncCall)
            and expr.name.upper() == "COUNT"
            and len(expr.args) == 1
            and isinstance(expr.args[0], Star)
        )

    @staticmethod
    def _output_columns(items: Tuple[SelectItem, ...], table: Table) -> List[str]:
        columns: List[str] = []
        for item in items:
            if isinstance(item.expr, Star):
                columns.extend(table.schema.column_names)
            elif item.alias:
                columns.append(item.alias)
            elif isinstance(item.expr, ColumnRef):
                columns.append(str(item.expr))
            else:
                columns.append(f"expr{len(columns) + 1}")
        return columns

    @staticmethod
    def _project(
        items: Tuple[SelectItem, ...], table: Table, ctx: RowContext
    ) -> Tuple[Any, ...]:
        values: List[Any] = []
        for item in items:
            if isinstance(item.expr, Star):
                for col in table.schema.columns:
                    values.append(ctx.lookup(ColumnRef(None, col.name)))
            else:
                values.append(evaluate(item.expr, ctx))
        return tuple(values)
