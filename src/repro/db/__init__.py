"""A small in-process relational engine — the per-archive DBMS substrate.

Each SkyNode in the paper hosts an autonomous DBMS (the prototype used SQL
Server). This package provides the equivalent substrate: typed tables, a
WHERE-expression evaluator, single-table SELECT / COUNT(*) execution, temp
tables, stored procedures, an HTM-backed spatial range scan, and a simulated
LRU buffer pool so cache-warming effects (paper Section 5.3) are measurable.
"""

from repro.db.types import ColumnType
from repro.db.schema import Column, TableSchema
from repro.db.table import SpatialSpec, Table
from repro.db.buffer import BufferPool
from repro.db.engine import Database, ResultSet
from repro.db.persist import load_database, save_database

__all__ = [
    "ColumnType",
    "Column",
    "TableSchema",
    "SpatialSpec",
    "Table",
    "BufferPool",
    "Database",
    "ResultSet",
    "load_database",
    "save_database",
]
