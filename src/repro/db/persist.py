"""Saving and loading archive databases as JSON.

Lets a synthetic archive be generated once and reused across CLI sessions
or shipped as a test fixture: schema, spatial spec, rows, dialect — the
whole :class:`~repro.db.engine.Database` — round-trips through one
self-describing JSON document.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Callable, Dict, Optional

from repro.db.engine import Database
from repro.db.schema import Column
from repro.db.table import SpatialSpec
from repro.db.types import ColumnType
from repro.errors import SchemaError

FORMAT_VERSION = 1


def database_to_dict(db: Database) -> Dict[str, Any]:
    """Serialize a database (excluding temp tables and procedures)."""
    tables = []
    for name in db.table_names():
        table = db.table(name)
        spatial = None
        if table.spatial is not None:
            spatial = {
                "ra_column": table.spatial.ra_column,
                "dec_column": table.spatial.dec_column,
                "htm_depth": table.spatial.htm_depth,
            }
        tables.append(
            {
                "name": table.name,
                "columns": [
                    {
                        "name": col.name,
                        "type": col.ctype.value,
                        "nullable": col.nullable,
                    }
                    for col in table.schema.columns
                ],
                "spatial": spatial,
                "rows": [list(table.row(pos)) for pos in table.iter_positions()],
                "epoch_marks": [list(mark) for mark in table._epoch_marks],
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "name": db.name,
        "dialect": db.dialect,
        "page_size": db.page_size,
        "buffer_pages": db.buffer.capacity_pages,
        "committed_epoch": db.committed_epoch,
        "oldest_epoch": db.oldest_epoch,
        "tables": tables,
    }


def database_from_dict(data: Dict[str, Any]) -> Database:
    """Rebuild a database serialized by :func:`database_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported database dump format_version {version!r}"
        )
    db = Database(
        str(data["name"]),
        dialect=str(data.get("dialect") or "ansi"),
        page_size=int(data.get("page_size") or 64),
        buffer_pages=int(data.get("buffer_pages") or 1024),
    )
    for table_data in data.get("tables", []):
        columns = [
            Column(
                str(col["name"]),
                ColumnType(col["type"]),
                nullable=bool(col.get("nullable", True)),
            )
            for col in table_data["columns"]
        ]
        spatial_data = table_data.get("spatial")
        spatial = (
            SpatialSpec(
                ra_column=str(spatial_data["ra_column"]),
                dec_column=str(spatial_data["dec_column"]),
                htm_depth=int(spatial_data.get("htm_depth", 12)),
            )
            if spatial_data
            else None
        )
        name = str(table_data["name"])
        db.create_table(name, columns, spatial=spatial)
        rows = [tuple(row) for row in table_data.get("rows", [])]
        marks = table_data.get("epoch_marks")
        if marks:
            # Replay the visibility watermarks so pinned reads against the
            # reloaded archive see exactly the prefixes they saw before.
            done = 0
            for mark_epoch, count in marks:
                db.table(name).stamp_epoch(int(mark_epoch))
                if int(count) > done:
                    db.insert(name, rows[done:int(count)])
                    done = int(count)
        else:
            db.insert(name, rows)  # pre-epoch dump: everything at epoch 0
    db.committed_epoch = int(data.get("committed_epoch") or 0)
    db.oldest_epoch = int(data.get("oldest_epoch") or 0)
    return db


def save_database(
    db: Database,
    path: str | pathlib.Path,
    *,
    crash_hook: Optional[Callable[[pathlib.Path], None]] = None,
) -> None:
    """Write a database dump to a JSON file, crash-atomically.

    The dump is written to a temporary sibling and renamed into place
    (``os.replace``), so a crash mid-write can never leave a truncated or
    half-serialized file where a good dump used to be: the path holds
    either the old complete dump or the new one. ``crash_hook`` is a test
    hook called with the temp path after the write but before the rename —
    raising from it simulates dying at the most dangerous moment.
    """
    target = pathlib.Path(path)
    payload = database_to_dict(db)
    tmp = target.with_name(target.name + ".tmp")
    try:
        tmp.write_text(
            json.dumps(payload, separators=(",", ":")), encoding="utf-8"
        )
        if crash_hook is not None:
            crash_hook(tmp)
        os.replace(tmp, target)
    finally:
        tmp.unlink(missing_ok=True)


def load_database(path: str | pathlib.Path) -> Database:
    """Load a database dump written by :func:`save_database`."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return database_from_dict(data)
