"""Saving and loading archive databases as JSON.

Lets a synthetic archive be generated once and reused across CLI sessions
or shipped as a test fixture: schema, spatial spec, rows, dialect — the
whole :class:`~repro.db.engine.Database` — round-trips through one
self-describing JSON document.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict

from repro.db.engine import Database
from repro.db.schema import Column
from repro.db.table import SpatialSpec
from repro.db.types import ColumnType
from repro.errors import SchemaError

FORMAT_VERSION = 1


def database_to_dict(db: Database) -> Dict[str, Any]:
    """Serialize a database (excluding temp tables and procedures)."""
    tables = []
    for name in db.table_names():
        table = db.table(name)
        spatial = None
        if table.spatial is not None:
            spatial = {
                "ra_column": table.spatial.ra_column,
                "dec_column": table.spatial.dec_column,
                "htm_depth": table.spatial.htm_depth,
            }
        tables.append(
            {
                "name": table.name,
                "columns": [
                    {
                        "name": col.name,
                        "type": col.ctype.value,
                        "nullable": col.nullable,
                    }
                    for col in table.schema.columns
                ],
                "spatial": spatial,
                "rows": [list(table.row(pos)) for pos in table.iter_positions()],
            }
        )
    return {
        "format_version": FORMAT_VERSION,
        "name": db.name,
        "dialect": db.dialect,
        "page_size": db.page_size,
        "buffer_pages": db.buffer.capacity_pages,
        "tables": tables,
    }


def database_from_dict(data: Dict[str, Any]) -> Database:
    """Rebuild a database serialized by :func:`database_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SchemaError(
            f"unsupported database dump format_version {version!r}"
        )
    db = Database(
        str(data["name"]),
        dialect=str(data.get("dialect") or "ansi"),
        page_size=int(data.get("page_size") or 64),
        buffer_pages=int(data.get("buffer_pages") or 1024),
    )
    for table_data in data.get("tables", []):
        columns = [
            Column(
                str(col["name"]),
                ColumnType(col["type"]),
                nullable=bool(col.get("nullable", True)),
            )
            for col in table_data["columns"]
        ]
        spatial_data = table_data.get("spatial")
        spatial = (
            SpatialSpec(
                ra_column=str(spatial_data["ra_column"]),
                dec_column=str(spatial_data["dec_column"]),
                htm_depth=int(spatial_data.get("htm_depth", 12)),
            )
            if spatial_data
            else None
        )
        db.create_table(str(table_data["name"]), columns, spatial=spatial)
        db.insert(
            str(table_data["name"]),
            [tuple(row) for row in table_data.get("rows", [])],
        )
    return db


def save_database(db: Database, path: str | pathlib.Path) -> None:
    """Write a database dump to a JSON file."""
    payload = database_to_dict(db)
    pathlib.Path(path).write_text(
        json.dumps(payload, separators=(",", ":")), encoding="utf-8"
    )


def load_database(path: str | pathlib.Path) -> Database:
    """Load a database dump written by :func:`save_database`."""
    data = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    return database_from_dict(data)
