"""A simulated LRU buffer pool.

The paper's count-star performance queries have a side effect the authors
call out explicitly (Section 5.3): they "warm the database cache on each
SkyNode with index pages that satisfy the main cross match query, and thus
aid in reducing processing time". To make that effect measurable, every row
access in the engine is routed through this pool and classified as a logical
read (always) plus a physical read when the page was not resident.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

PageKey = Tuple[str, int]


@dataclass
class BufferStats:
    """Cumulative read counters."""

    logical_reads: int = 0
    physical_reads: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served from the pool."""
        if self.logical_reads == 0:
            return 0.0
        return 1.0 - self.physical_reads / self.logical_reads


class BufferPool:
    """Fixed-capacity LRU page cache keyed by (table name, page number)."""

    def __init__(self, capacity_pages: int = 1024) -> None:
        if capacity_pages < 1:
            raise ValueError(f"capacity_pages must be >= 1, got {capacity_pages}")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[PageKey, None]" = OrderedDict()
        self.stats = BufferStats()

    def access(self, table: str, page_no: int) -> bool:
        """Touch a page; returns True on a cache hit."""
        key = (table, page_no)
        self.stats.logical_reads += 1
        if key in self._pages:
            self._pages.move_to_end(key)
            return True
        self.stats.physical_reads += 1
        self._pages[key] = None
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
            self.stats.evictions += 1
        return False

    def invalidate_table(self, table: str) -> None:
        """Drop every cached page of one table (after DROP/bulk load)."""
        for key in [k for k in self._pages if k[0] == table]:
            del self._pages[key]

    def clear(self) -> None:
        """Drop all pages (a cold cache), keeping the counters."""
        self._pages.clear()

    def reset_stats(self) -> None:
        """Zero the counters, keeping resident pages."""
        self.stats = BufferStats()

    @property
    def resident_pages(self) -> int:
        """Number of pages currently cached."""
        return len(self._pages)
