"""Distributed tracing for the simulated federation (see docs/OBSERVABILITY.md)."""

from repro.tracing.asserts import (
    assert_overlapping,
    assert_serial,
    assert_span_tree,
    chain_hop_spans,
    check_span_invariants,
    find_spans,
    span_invariants,
)
from repro.tracing.export import (
    render_flamegraph,
    to_chrome_trace,
    to_chrome_trace_json,
)
from repro.tracing.tracer import (
    Span,
    Trace,
    TraceContext,
    Tracer,
    active_tracer,
    span_from_dict,
    trace_from_dict,
    use_tracer,
)

__all__ = [
    "Span",
    "Trace",
    "TraceContext",
    "Tracer",
    "active_tracer",
    "use_tracer",
    "span_from_dict",
    "trace_from_dict",
    "render_flamegraph",
    "to_chrome_trace",
    "to_chrome_trace_json",
    "assert_span_tree",
    "assert_serial",
    "assert_overlapping",
    "chain_hop_spans",
    "check_span_invariants",
    "find_spans",
    "span_invariants",
]
