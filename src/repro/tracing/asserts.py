"""Span-tree assertions: structural test oracles over recorded traces.

"Rows match" is a weak oracle — two executions can return identical rows
through wildly different (and wrong) paths. These helpers let tests assert
the *shape* of an execution instead: which operations ran, on which hosts,
nested under what, serial or overlapping in simulated time.

* :func:`span_invariants` checks the properties every well-formed trace
  must satisfy (single root, children inside their parent's interval,
  closed spans, id uniqueness) and returns violations as strings.
* :func:`assert_span_tree` matches a trace against a declarative shape:
  nested ``(name_pattern, [child shapes...])`` tuples, ``fnmatch``-style
  patterns, children matched as an ordered subsequence (extra children
  are allowed — a shape pins what MUST be there, not everything).
* :func:`chain_hop_spans` / :func:`assert_serial` /
  :func:`assert_overlapping` are the chain-specific oracles: hop order,
  store-and-forward serialization, pipelined overlap.
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.tracing.tracer import Span, Trace

#: Sim-clock slack for interval containment checks. The simulated clock is
#: exact floating-point arithmetic, but parallel-block bookkeeping adds and
#: subtracts the same floats in different orders.
TOLERANCE_S = 1e-9

ShapeLike = Union[str, Tuple[Any, ...]]


def span_invariants(trace: Trace, *, tolerance: float = TOLERANCE_S) -> List[str]:
    """Every violation of the well-formedness invariants (empty == good).

    Checked: exactly one root; unique span ids; every span closed with
    ``end >= start``; every child's interval inside its parent's (within
    ``tolerance``); server spans only ever child to client spans.
    """
    problems: List[str] = []
    if not trace.spans:
        return [f"trace {trace.trace_id!r} has no spans"]
    roots = trace.roots
    if len(roots) != 1:
        problems.append(
            f"expected exactly one root span, found {len(roots)}: "
            f"{[s.name for s in roots]}"
        )
    seen_ids = set()
    for span in trace.spans:
        if span.span_id in seen_ids:
            problems.append(f"duplicate span id {span.span_id!r}")
        seen_ids.add(span.span_id)
        if span.trace_id != trace.trace_id:
            problems.append(
                f"span {span.span_id} carries foreign trace id "
                f"{span.trace_id!r}"
            )
        if span.end_s is None:
            problems.append(f"span {span.span_id} ({span.name}) never closed")
            continue
        if span.end_s < span.start_s - tolerance:
            problems.append(
                f"span {span.span_id} ({span.name}) ends before it starts: "
                f"[{span.start_s}, {span.end_s}]"
            )
        parent = trace.parent(span)
        if parent is None:
            continue
        if parent.end_s is None:
            continue  # already reported above
        if (
            span.start_s < parent.start_s - tolerance
            or span.end_s > parent.end_s + tolerance
        ):
            problems.append(
                f"span {span.span_id} ({span.name}, "
                f"[{span.start_s:.6f}, {span.end_s:.6f}]) escapes its "
                f"parent {parent.span_id} ({parent.name}, "
                f"[{parent.start_s:.6f}, {parent.end_s:.6f}])"
            )
        if span.kind == "server" and parent.kind != "client":
            problems.append(
                f"server span {span.span_id} ({span.name}) hangs off "
                f"{parent.kind!r} span {parent.span_id} ({parent.name}); "
                "server spans must continue a client span"
            )
    return problems


def check_span_invariants(trace: Trace, *, tolerance: float = TOLERANCE_S) -> None:
    """Raise ``AssertionError`` listing every invariant violation."""
    problems = span_invariants(trace, tolerance=tolerance)
    if problems:
        raise AssertionError(
            f"trace {trace.trace_id!r} violates span invariants:\n  "
            + "\n  ".join(problems)
        )


def _shape_parts(shape: ShapeLike) -> Tuple[str, Sequence[ShapeLike]]:
    if isinstance(shape, str):
        return shape, ()
    if len(shape) == 1:
        return shape[0], ()
    name, children = shape
    return name, list(children)


def _matches(span: Span, pattern: str) -> bool:
    """Match ``name`` or ``name@host`` with fnmatch wildcards."""
    if "@" in pattern:
        name_pat, host_pat = pattern.split("@", 1)
        return fnmatchcase(span.name, name_pat) and fnmatchcase(
            span.host, host_pat
        )
    return fnmatchcase(span.name, pattern)


def _match_tree(trace: Trace, span: Span, shape: ShapeLike, path: str) -> Optional[str]:
    """None when the subtree matches, else a description of the mismatch."""
    pattern, child_shapes = _shape_parts(shape)
    here = f"{path}/{pattern}"
    if not _matches(span, pattern):
        return (
            f"{here}: span {span.name!r}@{span.host} does not match "
            f"pattern {pattern!r}"
        )
    children = trace.children(span)
    index = 0
    for child_shape in child_shapes:
        child_pattern, _ = _shape_parts(child_shape)
        error: Optional[str] = None
        while index < len(children):
            candidate = children[index]
            index += 1
            if _matches(candidate, child_pattern):
                error = _match_tree(trace, candidate, child_shape, here)
                if error is None:
                    break
        else:
            if error is not None:
                return error  # a candidate matched but its subtree failed
            available = [f"{c.name}@{c.host}" for c in children]
            return (
                f"{here}: no child matching {child_pattern!r} "
                f"(children in start order: {available})"
            )
    return None


def assert_span_tree(trace: Trace, shape: ShapeLike) -> None:
    """Assert the trace's root subtree matches a declarative shape.

    ``shape`` is a name pattern (``"SubmitQuery"``, ``"Pull*"``,
    ``"IsAlive@sdss.*"``) or a ``(pattern, [child shapes...])`` tuple.
    Child shapes must match *distinct* children in start-time order
    (an ordered subsequence); unmatched extra children are fine.
    """
    error = _match_tree(trace, trace.root, shape, "")
    if error is not None:
        raise AssertionError(f"span tree mismatch at {error}")


def find_spans(trace: Trace, pattern: str, *, kind: Optional[str] = None) -> List[Span]:
    """All spans matching a ``name`` / ``name@host`` pattern, start-ordered."""
    spans = [
        s
        for s in trace.spans
        if _matches(s, pattern) and (kind is None or s.kind == kind)
    ]
    return sorted(spans, key=lambda s: s.start_s)


def chain_hop_spans(trace: Trace) -> List[Span]:
    """The chain's per-hop ``PerformXMatch`` server spans, outermost first.

    In store-and-forward mode hop *k* calls hop *k+1* inside its own
    handler, so the spans strictly nest: walking parent links from any
    hop reaches every earlier hop. The returned order is therefore the
    plan order (first plan step = outermost span).
    """
    hops = find_spans(trace, "PerformXMatch", kind="server")

    def depth(span: Span) -> int:
        count = 0
        node: Optional[Span] = span
        while node is not None:
            node = trace.parent(node)
            count += 1
        return count

    return sorted(hops, key=depth)


def assert_serial(spans: Sequence[Span], *, tolerance: float = TOLERANCE_S) -> None:
    """Assert the spans' intervals do NOT overlap (store-and-forward)."""
    ordered = sorted(spans, key=lambda s: s.start_s)
    for left, right in zip(ordered, ordered[1:]):
        left_end = left.end_s if left.end_s is not None else left.start_s
        if right.start_s < left_end - tolerance:
            raise AssertionError(
                f"spans overlap but must be serial: {left.name} "
                f"[{left.start_s:.6f}, {left_end:.6f}] vs {right.name} "
                f"starting at {right.start_s:.6f}"
            )


def assert_overlapping(spans: Sequence[Span]) -> None:
    """Assert at least one pair of the spans' intervals overlaps (pipelining)."""
    items = list(spans)
    for i, left in enumerate(items):
        for right in items[i + 1:]:
            if left.overlaps(right):
                return
    raise AssertionError(
        "expected overlapping spans, but every pair is disjoint: "
        + ", ".join(
            f"{s.name}[{s.start_s:.6f},"
            f"{(s.end_s if s.end_s is not None else s.start_s):.6f}]"
            for s in items
        )
    )
