"""Trace exporters: Chrome ``trace_event`` JSON and an ASCII flamegraph.

The Chrome export follows the Trace Event Format's JSON-object form
(``{"traceEvents": [...]}``) with complete ("X") events in microseconds,
so a dump loads directly in ``about:tracing`` / Perfetto. The ASCII
flamegraph is the terminal-native view the ``trace`` CLI subcommand and
CI job summaries print.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Union

from repro.tracing.tracer import Span, Trace

TraceLike = Union[Trace, List[Span]]


def _spans_of(trace: TraceLike) -> List[Span]:
    return trace.spans if isinstance(trace, Trace) else list(trace)


def to_chrome_trace(trace: TraceLike) -> Dict[str, Any]:
    """Render a trace as a Chrome trace_event JSON object.

    One "X" (complete) event per span — timestamps and durations in
    microseconds of *simulated* time — plus "M" metadata events naming
    each federation host as a thread, so ``about:tracing`` groups spans
    by host exactly like it groups real threads.
    """
    spans = _spans_of(trace)
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        if span.host not in tids:
            tids[span.host] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": 1,
                    "tid": tids[span.host],
                    "args": {"name": span.host},
                }
            )
    for span in spans:
        end_s = span.end_s if span.end_s is not None else span.start_s
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "phase": span.phase,
            "wire_bytes": span.wire_bytes,
            "retries": span.retries,
            "status": span.status,
        }
        if span.annotations:
            args["annotations"] = [dict(a) for a in span.annotations]
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.kind,
                "ts": round(span.start_s * 1e6, 3),
                "dur": round((end_s - span.start_s) * 1e6, 3),
                "pid": 1,
                "tid": tids[span.host],
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_chrome_trace_json(trace: TraceLike, *, indent: Optional[int] = None) -> str:
    """:func:`to_chrome_trace` serialized to a JSON string."""
    return json.dumps(to_chrome_trace(trace), indent=indent, sort_keys=False)


def render_flamegraph(
    trace: Trace,
    *,
    width: int = 72,
    label_width: int = 44,
) -> str:
    """An ASCII flamegraph: one line per span, bars on a shared timeline.

    Depth-first from the root; each bar is the span's sim-time interval
    scaled onto ``width`` columns, so nesting, serialization, and overlap
    (pipelined batches!) are visible at a glance in a terminal or a CI
    job summary.
    """
    root = trace.root
    t0 = root.start_s
    t1 = max(
        (s.end_s if s.end_s is not None else s.start_s) for s in trace.spans
    )
    window = max(t1 - t0, 1e-12)
    lines: List[str] = [
        f"trace {trace.trace_id}: {root.name} "
        f"({window:.3f}s sim, {len(trace)} spans, "
        f"{trace.total_wire_bytes()} B on the wire)"
    ]
    walked = [
        pair for root_span in trace.roots for pair in trace.walk(root_span)
    ]
    for span, depth in walked:
        end_s = span.end_s if span.end_s is not None else span.start_s
        lo = int(round((span.start_s - t0) / window * width))
        hi = int(round((end_s - t0) / window * width))
        hi = max(hi, lo + 1)  # zero-length spans still get one cell
        bar = " " * lo + "█" * (hi - lo) + " " * (width - hi)
        marker = {"client": "→", "server": "◆", "internal": "·"}.get(
            span.kind, "?"
        )
        label = f"{'  ' * depth}{marker} {span.name}@{span.host}"
        if len(label) > label_width:
            label = label[: label_width - 1] + "…"
        extra = f" {span.duration_s * 1000.0:9.2f}ms"
        if span.wire_bytes:
            extra += f" {span.wire_bytes:>7}B"
        if span.retries:
            extra += f" retries={span.retries}"
        if span.status != "ok":
            extra += " !" + span.status
        lines.append(f"{label:<{label_width}}|{bar}|{extra}")
    return "\n".join(lines)
