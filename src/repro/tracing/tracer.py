"""Federation-wide distributed tracing on the simulated clock.

The paper's cost model (Section 5.3) splits a federated query's cost into
per-SkyNode processing and inter-node transmission — but flat counters
cannot say *which hop* of the daisy chain spent the time. This module adds
Dapper-style span trees to the simulated federation: every SOAP call
becomes a client span at the caller and a server span at the callee,
related by a ``<sq:TraceContext>`` SOAP header block that rides in the
request envelope, and every span records its interval on the **simulated**
clock, so a trace is a deterministic, replayable picture of the whole
query — portal planning, the count-star fan-out, each chain hop, each
pipelined batch pull, each 2PC exchange.

Spans form a tree rooted at the first span opened with no active parent
(the client call, or ``Portal.submit`` when the Portal is driven
directly). The tracer is single-process and synchronous like the
simulation itself: an explicit span stack replaces thread-locals, and the
only cross-host propagation is the SOAP header — exactly the part a real
distributed deployment would need.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceContext:
    """What crosses the wire: the trace id and the caller's span id.

    Serialized as ``<sq:TraceContext traceId=".." parentSpanId=".."/>`` in
    the SOAP Header block (see :mod:`repro.soap.envelope`).
    """

    trace_id: str
    parent_span_id: str


@dataclass
class Span:
    """One timed operation in a trace, on the simulated clock."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str  # the SOAP operation, or an internal label ("parallel", ...)
    kind: str  # "client" | "server" | "internal"
    host: str
    start_s: float
    end_s: Optional[float] = None
    #: The network phase label active when the span opened
    #: (crossmatch-chain, performance-query, batch-transfer, ...).
    phase: str = ""
    #: Wire bytes charged to the network while this span was innermost.
    wire_bytes: int = 0
    #: Messages delivered while this span was innermost.
    messages: int = 0
    #: Transport-level retry attempts recorded against this span.
    retries: int = 0
    status: str = "ok"  # "ok" | "error"
    error: str = ""
    #: Timestamped events: faults, backoff waits, batch sequence numbers,
    #: failovers — whatever the instrumented code annotates.
    annotations: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Span length in simulated seconds (0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def annotate(self, event: str, *, t: Optional[float] = None,
                 **fields: Any) -> None:
        """Attach one timestamped event to the span."""
        record: Dict[str, Any] = {"event": event}
        if t is not None:
            record["t"] = t
        record.update(fields)
        self.annotations.append(record)

    def events(self, event: Optional[str] = None) -> List[Dict[str, Any]]:
        """The span's annotations, optionally filtered by event name."""
        if event is None:
            return list(self.annotations)
        return [a for a in self.annotations if a.get("event") == event]

    def overlaps(self, other: "Span") -> bool:
        """True when the two spans' sim-time intervals intersect."""
        a0, a1 = self.start_s, self.end_s if self.end_s is not None else self.start_s
        b0, b1 = other.start_s, other.end_s if other.end_s is not None else other.start_s
        return a0 < b1 and b0 < a1

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (round-trips through :func:`span_from_dict`)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "host": self.host,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "phase": self.phase,
            "wire_bytes": self.wire_bytes,
            "messages": self.messages,
            "retries": self.retries,
            "status": self.status,
            "error": self.error,
            "annotations": [dict(a) for a in self.annotations],
        }


def span_from_dict(data: Dict[str, Any]) -> Span:
    """Rebuild a :class:`Span` from :meth:`Span.to_dict` output."""
    return Span(
        trace_id=str(data["trace_id"]),
        span_id=str(data["span_id"]),
        parent_id=data.get("parent_id"),
        name=str(data["name"]),
        kind=str(data["kind"]),
        host=str(data["host"]),
        start_s=float(data["start_s"]),
        end_s=None if data.get("end_s") is None else float(data["end_s"]),
        phase=str(data.get("phase", "")),
        wire_bytes=int(data.get("wire_bytes", 0)),
        messages=int(data.get("messages", 0)),
        retries=int(data.get("retries", 0)),
        status=str(data.get("status", "ok")),
        error=str(data.get("error", "")),
        annotations=[dict(a) for a in data.get("annotations", [])],
    )


class Trace:
    """All spans of one trace id, assembled into a navigable tree."""

    def __init__(self, trace_id: str, spans: List[Span]) -> None:
        self.trace_id = trace_id
        #: Spans in recording order (a parent is always recorded before
        #: its children — spans open depth-first).
        self.spans = list(spans)
        self._by_id: Dict[str, Span] = {s.span_id: s for s in self.spans}

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    @property
    def root(self) -> Span:
        """The trace's root span (no parent within the trace)."""
        for span in self.spans:
            if span.parent_id is None or span.parent_id not in self._by_id:
                return span
        raise ValueError(f"trace {self.trace_id!r} has no root span")

    @property
    def roots(self) -> List[Span]:
        """Every parentless span (a well-formed trace has exactly one)."""
        return [
            s
            for s in self.spans
            if s.parent_id is None or s.parent_id not in self._by_id
        ]

    def span(self, span_id: str) -> Optional[Span]:
        """Lookup by span id."""
        return self._by_id.get(span_id)

    def parent(self, span: Span) -> Optional[Span]:
        """The span's parent within this trace, if any."""
        if span.parent_id is None:
            return None
        return self._by_id.get(span.parent_id)

    def children(self, span: Span) -> List[Span]:
        """Direct children, ordered by start time (stable on ties)."""
        kids = [s for s in self.spans if s.parent_id == span.span_id]
        return sorted(kids, key=lambda s: s.start_s)

    def find(
        self,
        name: Optional[str] = None,
        *,
        kind: Optional[str] = None,
        host: Optional[str] = None,
    ) -> List[Span]:
        """Spans matching every given filter, in recording order."""
        return [
            s
            for s in self.spans
            if (name is None or s.name == name)
            and (kind is None or s.kind == kind)
            and (host is None or s.host == host)
        ]

    def walk(self, span: Optional[Span] = None, depth: int = 0):
        """Depth-first (span, depth) pairs from the root (or a subtree)."""
        start = span if span is not None else self.root
        yield start, depth
        for child in self.children(start):
            yield from self.walk(child, depth + 1)

    def total_wire_bytes(self) -> int:
        """Sum of wire bytes charged across every span of the trace."""
        return sum(s.wire_bytes for s in self.spans)

    def duration_s(self) -> float:
        """Root-span duration (the whole traced operation's makespan)."""
        return self.root.duration_s

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (round-trips through :func:`trace_from_dict`)."""
        return {
            "trace_id": self.trace_id,
            "spans": [s.to_dict() for s in self.spans],
        }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    """Rebuild a :class:`Trace` from :meth:`Trace.to_dict` output."""
    return Trace(
        str(data["trace_id"]),
        [span_from_dict(s) for s in data.get("spans", [])],
    )


class Tracer:
    """Mints trace/span ids and records spans against a clock.

    The clock and phase label come from callables so the tracer stays
    import-independent of the transport layer;
    :meth:`repro.transport.network.SimulatedNetwork.install_tracer` binds
    both to the simulated network.
    """

    def __init__(
        self,
        clock_fn: Optional[Callable[[], float]] = None,
        phase_fn: Optional[Callable[[], str]] = None,
    ) -> None:
        self.clock_fn: Callable[[], float] = clock_fn or (lambda: 0.0)
        self.phase_fn: Callable[[], str] = phase_fn or (lambda: "")
        self.spans: List[Span] = []
        #: Bytes delivered while no span was active (reconciles span byte
        #: totals with the flat NetworkMetrics counters).
        self.untraced_bytes: int = 0
        self._stack: List[Span] = []
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- the active-span stack ----------------------------------------------------

    def current_span(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def context(self) -> Optional[TraceContext]:
        """The wire context of the current span (for header injection)."""
        span = self.current_span()
        if span is None:
            return None
        return TraceContext(span.trace_id, span.span_id)

    # -- span lifecycle -----------------------------------------------------------

    def begin(
        self,
        name: str,
        *,
        host: str,
        kind: str = "internal",
        context: Optional[TraceContext] = None,
    ) -> Span:
        """Open a span and push it on the stack.

        Parentage, in order of preference: the explicit remote ``context``
        (a server span continuing a propagated trace), else the innermost
        open span, else a brand-new root trace.
        """
        if context is not None:
            trace_id, parent_id = context.trace_id, context.parent_span_id
        else:
            parent = self.current_span()
            if parent is not None:
                trace_id, parent_id = parent.trace_id, parent.span_id
            else:
                trace_id, parent_id = f"t{next(self._trace_ids)}", None
        span = Span(
            trace_id=trace_id,
            span_id=f"s{next(self._span_ids)}",
            parent_id=parent_id,
            name=name,
            kind=kind,
            host=host,
            start_s=self.clock_fn(),
            phase=self.phase_fn(),
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        """Close a span (stamps end time, pops it off the stack)."""
        if span.end_s is None:
            span.end_s = self.clock_fn()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # defensive: out-of-order finish
            self._stack.remove(span)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        host: str,
        kind: str = "internal",
        context: Optional[TraceContext] = None,
    ) -> Iterator[Span]:
        """Context-managed span; errors mark the span before re-raising."""
        span = self.begin(name, host=host, kind=kind, context=context)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            if not span.error:
                span.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            self.finish(span)

    # -- annotation hooks (the network feeds these) ---------------------------------

    def annotate(self, event: str, **fields: Any) -> None:
        """Attach an event to the current span (no-op when none is open)."""
        span = self.current_span()
        if span is not None:
            span.annotate(event, t=self.clock_fn(), **fields)

    def add_wire_bytes(self, wire_bytes: int) -> None:
        """Charge delivered bytes to the current span (or the untraced pool)."""
        span = self.current_span()
        if span is None:
            self.untraced_bytes += wire_bytes
        else:
            span.wire_bytes += wire_bytes
            span.messages += 1

    # -- assembled views ------------------------------------------------------------

    def trace_ids(self) -> List[str]:
        """Distinct trace ids in first-seen order."""
        return list(dict.fromkeys(s.trace_id for s in self.spans))

    def trace(self, trace_id: Optional[str] = None) -> Trace:
        """One assembled trace (default: the most recently started)."""
        ids = self.trace_ids()
        if not ids:
            raise ValueError("no spans recorded")
        chosen = trace_id if trace_id is not None else ids[-1]
        spans = [s for s in self.spans if s.trace_id == chosen]
        if not spans:
            raise ValueError(f"no spans for trace {chosen!r}")
        return Trace(chosen, spans)

    def traces(self) -> List[Trace]:
        """Every recorded trace, in first-seen order."""
        return [self.trace(tid) for tid in self.trace_ids()]

    def reset(self) -> None:
        """Forget all recorded spans (open spans are abandoned too)."""
        self.spans.clear()
        self._stack.clear()
        self.untraced_bytes = 0


# -- the request-scoped active tracer ---------------------------------------------
#
# The simulation is synchronous and single-process, so "which tracer is
# active for this request" is a simple stack the network pushes around each
# handler invocation. Service-side code (``WebService.handle_soap``) reads
# it without needing a reference to the network.

_ACTIVE_TRACERS: List[Optional[Tracer]] = []


def active_tracer() -> Optional[Tracer]:
    """The tracer of the network currently delivering a request, if any."""
    return _ACTIVE_TRACERS[-1] if _ACTIVE_TRACERS else None


@contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[None]:
    """Scope a tracer (or None) as the active one for nested handlers."""
    _ACTIVE_TRACERS.append(tracer)
    try:
        yield
    finally:
        _ACTIVE_TRACERS.pop()
