"""Transactional data exchange: replicate a sky region across archives.

The motivating use case for the paper's transactions extension: copy all
of a source archive's objects inside an AREA into replica tables at one or
more target archives — atomically, so no target ever exposes a partial
copy. The rows travel over the Query service (chunk-aware), staging and
2PC over the Transaction services.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import TransactionError
from repro.portal.portal import Portal
from repro.services.chunked import receive_rowset
from repro.services.client import ServiceProxy
from repro.soap.encoding import WireRowSet
from repro.sql.ast import (
    AreaLike,
    ColumnRef,
    Query,
    SelectItem,
    TableRef,
)
from repro.sql.printer import to_sql
from repro.transactions.coordinator import TwoPhaseCoordinator, TxnOutcome
from repro.transport.chunking import chunk_rowset

_txn_counter = itertools.count(1)


@dataclass
class ExchangeResult:
    """Outcome of one replication exchange."""

    txn_id: str
    committed: bool
    rows_copied: int
    replica_table: str
    votes: Dict[str, str] = field(default_factory=dict)
    abort_reason: str = ""


class DataExchange:
    """Region replication from one archive into others, under 2PC."""

    def __init__(
        self,
        portal: Portal,
        transaction_urls: Dict[str, str],
        *,
        coordinator: Optional[TwoPhaseCoordinator] = None,
        stage_rows_per_call: int = 500,
    ) -> None:
        """``transaction_urls`` maps archive name -> Transaction service URL."""
        self.portal = portal
        self.transaction_urls = dict(transaction_urls)
        self.coordinator = coordinator or TwoPhaseCoordinator(
            portal.require_network(), portal.hostname
        )
        self.stage_rows_per_call = stage_rows_per_call

    def replicate_region(
        self,
        source_archive: str,
        target_archives: List[str],
        area: AreaLike,
        *,
        columns: Optional[List[str]] = None,
        target_table: Optional[str] = None,
    ) -> ExchangeResult:
        """Copy the source's in-AREA objects into each target, atomically.

        ``target_table`` overrides the default ``{source}_replica`` name —
        the full-replica provisioning path uses the source's own primary
        table name so a replica SkyNode answers the same node queries.
        """
        tracer = self.portal.require_network().tracer
        scope = (
            tracer.span("replicate-region", host=self.portal.hostname)
            if tracer is not None
            else nullcontext(None)
        )
        with scope:
            result = self._replicate_region(
                source_archive,
                target_archives,
                area,
                columns=columns,
                target_table=target_table,
            )
            if tracer is not None:
                tracer.annotate(
                    "exchange",
                    txn_id=result.txn_id,
                    committed=result.committed,
                    rows_copied=result.rows_copied,
                )
        return result

    def _replicate_region(
        self,
        source_archive: str,
        target_archives: List[str],
        area: AreaLike,
        *,
        columns: Optional[List[str]] = None,
        target_table: Optional[str] = None,
    ) -> ExchangeResult:
        if not target_archives:
            raise TransactionError("replicate_region needs at least one target")
        source = self.portal.catalog.node(source_archive)
        rowset = self._pull_source_rows(source, area, columns)
        replica_table = target_table or f"{source_archive.lower()}_replica"
        txn_id = f"xchg-{source_archive.lower()}-{next(_txn_counter)}"

        participants = []
        for archive in target_archives:
            url = self.transaction_urls.get(archive)
            if url is None:
                raise TransactionError(
                    f"archive {archive!r} has no Transaction service"
                )
            participants.append(url)

        network = self.portal.require_network()
        with network.phase("transaction"):
            column_specs = [
                {"name": name.split(".", 1)[-1], "type": code}
                for name, code in rowset.columns
            ]
            for url in participants:
                proxy = self._proxy(url)
                proxy.call("Begin", txn_id=txn_id)
                proxy.call(
                    "EnsureTable", table=replica_table, columns=column_specs
                )
                for chunk in chunk_rowset(rowset, self.stage_rows_per_call):
                    proxy.call(
                        "StageRows",
                        txn_id=txn_id,
                        table=replica_table,
                        rows=chunk,
                    )
        outcome: TxnOutcome = self.coordinator.complete(txn_id, participants)
        return ExchangeResult(
            txn_id=txn_id,
            committed=outcome.committed,
            rows_copied=len(rowset.rows) if outcome.committed else 0,
            replica_table=replica_table,
            votes=outcome.votes,
            abort_reason=outcome.abort_reason,
        )

    def pull_table_with_positions(
        self,
        source_archive: str,
        columns: List[str],
        *,
        position_column: str = "_skyq_pos",
    ) -> WireRowSet:
        """Pull every row of the source's primary table, in table order,
        with each row's position appended as a trailing int column.

        The position is the row's index in the source's own scan order —
        the same order the monolithic cross-match engine visits rows in —
        so shard tables carrying it can reproduce the monolithic result
        order exactly after a scatter-gather merge (see
        :mod:`repro.shard.merge`). Travels over the source's Query
        service like any replication pull; the position is assigned
        client-side because it is an artifact of *this* table's layout,
        not a column the source schema knows about.
        """
        source = self.portal.catalog.node(source_archive)
        info = source.info
        query = Query(
            items=tuple(
                SelectItem(ColumnRef("s", column)) for column in columns
            ),
            tables=(TableRef(None, info.primary_table, "s"),),
        )
        proxy = self._proxy(source.services["query"])
        network = self.portal.require_network()
        with network.phase("transaction"):
            response = proxy.call("ExecuteQueryChunked", sql=to_sql(query))
            rowset = receive_rowset(response, proxy)
        return WireRowSet(
            list(rowset.columns) + [(position_column, "int")],
            [tuple(row) + (pos,) for pos, row in enumerate(rowset.rows)],
        )

    def stage_partitioned(
        self,
        assignments: Dict[str, WireRowSet],
        *,
        target_table: str,
        txn_label: str,
    ) -> ExchangeResult:
        """Stage a *different* rowset at each participant, under ONE 2PC.

        The shard-provisioning path: ``assignments`` maps participant
        keys (present in ``transaction_urls``) to the row slice each must
        apply — a shard and its replicas receive identical slices,
        sibling shards disjoint ones. A single transaction spans every
        participant, so either the whole sharded layout appears or none
        of it does; no query can ever observe a half-provisioned archive.
        """
        if not assignments:
            raise TransactionError(
                "stage_partitioned needs at least one participant"
            )
        participants: List[str] = []
        for key in assignments:
            url = self.transaction_urls.get(key)
            if url is None:
                raise TransactionError(
                    f"participant {key!r} has no Transaction service"
                )
            participants.append(url)
        txn_id = f"xchg-{txn_label}-{next(_txn_counter)}"
        network = self.portal.require_network()
        with network.phase("transaction"):
            for key in sorted(assignments):
                rowset = assignments[key]
                proxy = self._proxy(self.transaction_urls[key])
                proxy.call("Begin", txn_id=txn_id)
                column_specs = [
                    {"name": name.split(".", 1)[-1], "type": code}
                    for name, code in rowset.columns
                ]
                proxy.call(
                    "EnsureTable", table=target_table, columns=column_specs
                )
                for chunk in chunk_rowset(rowset, self.stage_rows_per_call):
                    proxy.call(
                        "StageRows",
                        txn_id=txn_id,
                        table=target_table,
                        rows=chunk,
                    )
        outcome: TxnOutcome = self.coordinator.complete(txn_id, participants)
        rows_copied = (
            sum(len(rowset.rows) for rowset in assignments.values())
            if outcome.committed
            else 0
        )
        return ExchangeResult(
            txn_id=txn_id,
            committed=outcome.committed,
            rows_copied=rows_copied,
            replica_table=target_table,
            votes=outcome.votes,
            abort_reason=outcome.abort_reason,
        )

    def _proxy(self, url: str) -> ServiceProxy:
        return ServiceProxy(
            self.portal.require_network(), self.portal.hostname, url
        )

    def _pull_source_rows(
        self,
        source,  # NodeRecord
        area: AreaLike,
        columns: Optional[List[str]],
    ) -> WireRowSet:
        info = source.info
        wanted = columns or [
            info.object_id_column, info.ra_column, info.dec_column
        ]
        query = Query(
            items=tuple(
                SelectItem(ColumnRef("s", column)) for column in wanted
            ),
            tables=(TableRef(None, info.primary_table, "s"),),
            where=area,
        )
        proxy = self._proxy(source.services["query"])
        network = self.portal.require_network()
        with network.phase("transaction"):
            response = proxy.call("ExecuteQueryChunked", sql=to_sql(query))
            return receive_rowset(response, proxy)
