"""The two-phase-commit coordinator with a write-ahead log.

Protocol: once staging is done, the coordinator logs BEGIN, collects
Prepare votes from every participant, logs its DECISION (commit only on a
unanimous yes — presumed abort otherwise), delivers the decision to every
participant, then logs COMPLETE. A crash between DECISION and COMPLETE
leaves the transaction *in doubt*; :meth:`TwoPhaseCoordinator.recover`
replays the logged decision (participant operations are idempotent, so
redelivery is safe) — the textbook recovery path, exercised by the tests
via the :class:`CoordinatorCrash` fault hook.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Dict, List, Optional

from repro.errors import TransactionError, TransportError
from repro.services.client import ServiceProxy
from repro.transport.network import SimulatedNetwork

PHASE = "transaction"


class CoordinatorCrash(Exception):
    """Raised by fault hooks to simulate the coordinator dying mid-protocol."""


@dataclass
class LogRecord:
    """One write-ahead-log entry."""

    txn_id: str
    kind: str  # "begin" | "decision" | "complete"
    decision: str = ""  # "commit" | "abort" for decision records
    participants: List[str] = field(default_factory=list)


class CoordinatorLog:
    """The coordinator's durable log (survives coordinator restarts)."""

    def __init__(self) -> None:
        self.records: List[LogRecord] = []

    def append(self, record: LogRecord) -> None:
        """Durably append a record."""
        self.records.append(record)

    def in_doubt(self) -> Dict[str, LogRecord]:
        """Decision records that never reached COMPLETE (need replay)."""
        decisions: Dict[str, LogRecord] = {}
        completed: set[str] = set()
        for record in self.records:
            if record.kind == "decision":
                decisions[record.txn_id] = record
            elif record.kind == "complete":
                completed.add(record.txn_id)
        return {
            txn_id: record
            for txn_id, record in decisions.items()
            if txn_id not in completed
        }


@dataclass
class TxnOutcome:
    """What happened to one coordinated transaction."""

    txn_id: str
    committed: bool
    votes: Dict[str, str] = field(default_factory=dict)
    abort_reason: str = ""


class TwoPhaseCoordinator:
    """Drives 2PC over the participants' Transaction services."""

    def __init__(
        self,
        network: SimulatedNetwork,
        hostname: str,
        log: Optional[CoordinatorLog] = None,
    ) -> None:
        self.network = network
        self.hostname = hostname
        self.log = log if log is not None else CoordinatorLog()
        #: Test hook: called before each Commit/Abort delivery with the
        #: participant URL; raise CoordinatorCrash to simulate dying.
        self.fault_hook: Optional[Callable[[str], None]] = None

    def _proxy(self, url: str) -> ServiceProxy:
        return ServiceProxy(self.network, self.hostname, url)

    def _span(self, name: str) -> ContextManager:
        """An internal span for one 2PC exchange (no-op when untraced)."""
        tracer = self.network.tracer
        if tracer is None:
            return nullcontext(None)
        return tracer.span(name, host=self.hostname)

    def complete(self, txn_id: str, participants: List[str]) -> TxnOutcome:
        """Run prepare + decision + delivery for an already-staged txn."""
        with self.network.phase(PHASE), self._span("2pc-complete"):
            self.log.append(
                LogRecord(txn_id, "begin", participants=list(participants))
            )
            votes: Dict[str, str] = {}
            abort_reason = ""
            for url in participants:
                try:
                    reply = self._proxy(url).call("Prepare", txn_id=txn_id)
                    votes[url] = str(reply.get("vote"))
                    if votes[url] != "commit" and not abort_reason:
                        abort_reason = str(reply.get("reason") or "participant voted abort")
                except (TransportError, TransactionError) as exc:
                    votes[url] = "unreachable"
                    abort_reason = abort_reason or str(exc)
            decision = (
                "commit"
                if all(vote == "commit" for vote in votes.values())
                else "abort"
            )
            self.log.append(
                LogRecord(txn_id, "decision", decision=decision,
                          participants=list(participants))
            )
            if self.network.tracer is not None:
                self.network.tracer.annotate(
                    "decision", txn_id=txn_id, decision=decision
                )
            if self._deliver_decision(txn_id, decision, participants):
                self.log.append(LogRecord(txn_id, "complete"))
            # else: the txn stays in doubt in the log; recover() replays it.
            return TxnOutcome(
                txn_id=txn_id,
                committed=decision == "commit",
                votes=votes,
                abort_reason="" if decision == "commit" else abort_reason,
            )

    def _deliver_decision(
        self, txn_id: str, decision: str, participants: List[str]
    ) -> bool:
        """Deliver to everyone; True only if every delivery succeeded."""
        operation = "Commit" if decision == "commit" else "Abort"
        all_delivered = True
        for url in participants:
            if self.fault_hook is not None:
                self.fault_hook(url)
            try:
                self._proxy(url).call(operation, txn_id=txn_id)
            except TransportError:
                # The participant is partitioned; it stays prepared (in
                # doubt on its side) until recover() replays the decision.
                all_delivered = False
        return all_delivered

    def recover(self) -> List[TxnOutcome]:
        """Replay logged decisions that never completed (after a crash)."""
        outcomes: List[TxnOutcome] = []
        with self.network.phase(PHASE), self._span("2pc-recover"):
            for txn_id, record in self.log.in_doubt().items():
                if self._deliver_decision(
                    txn_id, record.decision, record.participants
                ):
                    self.log.append(LogRecord(txn_id, "complete"))
                outcomes.append(
                    TxnOutcome(txn_id, committed=record.decision == "commit")
                )
        return outcomes
