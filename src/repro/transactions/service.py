"""The per-archive transaction participant service.

A strict two-phase-commit participant: rows are *staged* against a
transaction id, validated at *prepare* (the vote), and only applied to the
archive's tables at *commit*. Staged-but-unprepared state is volatile (lost
on a simulated node crash); a PREPARED vote is durable — the participant
must be able to commit after recovery, which is what
:meth:`TransactionService.simulate_crash` exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Set

from repro.db.schema import Column
from repro.db.types import ColumnType
from repro.errors import TransactionError
from repro.services.framework import WebService
from repro.skynode.wrapper import ArchiveWrapper
from repro.soap.encoding import WireRowSet

_WIRE_TO_COLUMN = {
    "int": ColumnType.INT,
    "double": ColumnType.FLOAT,
    "string": ColumnType.STRING,
    "boolean": ColumnType.BOOL,
}


class TxnState(Enum):
    """Participant-side transaction states."""

    ACTIVE = "active"
    PREPARED = "prepared"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass
class _Txn:
    state: TxnState
    staged: List[tuple[str, WireRowSet]] = field(default_factory=list)
    #: When True, Commit applies the staged rows as one new snapshot epoch
    #: (the live-ingest path) instead of folding them into the current one.
    advance_epoch: bool = False
    #: Staging sequence numbers already accepted — a retried StageRows
    #: (response lost in flight) is recognized and not double-staged.
    seqs: Set[int] = field(default_factory=set)


class TransactionService(WebService):
    """Begin / StageRows / Prepare / Commit / Abort / GetStatus."""

    def __init__(
        self,
        wrapper: ArchiveWrapper,
        *,
        parser_memory_limit: Optional[int] = None,
    ) -> None:
        super().__init__(
            f"{wrapper.info.archive}Transaction",
            parser_memory_limit=parser_memory_limit,
        )
        self._wrapper = wrapper
        self._txns: Dict[str, _Txn] = {}
        #: Test hook: the next Prepare votes abort with this reason.
        self.fail_next_prepare: Optional[str] = None
        #: Epoch retention: after an epoch-advancing commit, keep this many
        #: past epochs pinnable and GC the rest. ``None`` retains forever.
        self.keep_epochs: Optional[int] = None
        #: Called with the new epoch after every epoch-advancing commit
        #: (the SkyNode hooks stale-checkpoint reaping here).
        self.on_epoch_commit: Optional[Callable[[int], None]] = None
        self.register(
            "Begin", self._begin,
            params=(("txn_id", "string"), ("advance_epoch", "boolean")),
            returns="boolean",
            doc="Open a transaction (idempotent while active). With "
                "advance_epoch, commit applies the rows as a new snapshot "
                "epoch instead of extending the current one.",
        )
        self.register(
            "EnsureTable",
            self._ensure_table,
            params=(("table", "string"), ("columns", "array")),
            returns="boolean",
            doc="Idempotently create a replica table for incoming rows.",
        )
        self.register(
            "StageRows",
            self._stage_rows,
            params=(("txn_id", "string"), ("table", "string"),
                    ("rows", "rowset"), ("seq", "int")),
            returns="int",
            doc="Stage rows under a transaction (not yet visible). "
                "``seq`` >= 0 makes the call idempotent: a retried "
                "sequence number is acknowledged without re-staging.",
        )
        self.register(
            "Prepare", self._prepare, params=(("txn_id", "string"),),
            returns="struct",
            doc="Phase 1: validate staged rows and vote commit/abort.",
        )
        self.register(
            "Commit", self._commit, params=(("txn_id", "string"),),
            returns="boolean",
            doc="Phase 2: apply staged rows (idempotent).",
        )
        self.register(
            "Abort", self._abort, params=(("txn_id", "string"),),
            returns="boolean",
            doc="Discard a transaction (idempotent).",
        )
        self.register(
            "GetStatus", self._status, params=(("txn_id", "string"),),
            returns="string",
            doc="Participant-side state of a transaction id.",
        )

    # -- operations ------------------------------------------------------------

    def _begin(self, txn_id: str, advance_epoch: bool = False) -> bool:
        if not txn_id:
            raise TransactionError("Begin requires a txn_id")
        existing = self._txns.get(txn_id)
        if existing is None:
            self._txns[txn_id] = _Txn(
                TxnState.ACTIVE, advance_epoch=bool(advance_epoch)
            )
            return True
        if existing.state is TxnState.ACTIVE:
            if bool(advance_epoch) != existing.advance_epoch:
                raise TransactionError(
                    f"transaction {txn_id!r} re-begun with a different "
                    "advance_epoch setting"
                )
            return True  # idempotent re-begin
        raise TransactionError(
            f"transaction {txn_id!r} already {existing.state.value}"
        )

    def _ensure_table(self, table: str, columns: List[Dict[str, Any]]) -> bool:
        db = self._wrapper.db
        if db.has_table(table):
            return False
        cols = []
        for spec in columns:
            code = str(spec.get("type") or "string")
            ctype = _WIRE_TO_COLUMN.get(code)
            if ctype is None:
                raise TransactionError(f"unknown column type {code!r}")
            cols.append(Column(str(spec["name"]), ctype, nullable=True))
        db.create_table(table, cols)
        return True

    def _stage_rows(
        self, txn_id: str, table: str, rows: WireRowSet, seq: int = -1
    ) -> int:
        txn = self._require(txn_id)
        if txn.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"cannot stage into {txn.state.value} transaction {txn_id!r}"
            )
        if not isinstance(rows, WireRowSet):
            raise TransactionError("StageRows needs a rowset payload")
        seq = int(seq)
        if seq >= 0:
            if seq in txn.seqs:
                return len(rows.rows)  # retried batch; already staged
            txn.seqs.add(seq)
        txn.staged.append((table, rows))
        return len(rows.rows)

    def _prepare(self, txn_id: str) -> Dict[str, Any]:
        txn = self._require(txn_id)
        if txn.state is TxnState.PREPARED:
            return {"vote": "commit", "reason": ""}  # idempotent
        if txn.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"cannot prepare {txn.state.value} transaction {txn_id!r}"
            )
        if self.fail_next_prepare is not None:
            reason = self.fail_next_prepare
            self.fail_next_prepare = None
            txn.state = TxnState.ABORTED
            txn.staged.clear()
            return {"vote": "abort", "reason": reason}
        problem = self._validate(txn)
        if problem:
            txn.state = TxnState.ABORTED
            txn.staged.clear()
            return {"vote": "abort", "reason": problem}
        txn.state = TxnState.PREPARED  # durable from here on
        return {"vote": "commit", "reason": ""}

    def _commit(self, txn_id: str) -> bool:
        txn = self._txns.get(txn_id)
        if txn is None:
            raise TransactionError(f"unknown transaction {txn_id!r}")
        if txn.state is TxnState.COMMITTED:
            return True  # idempotent redelivery
        if txn.state is not TxnState.PREPARED:
            raise TransactionError(
                f"commit of {txn.state.value} transaction {txn_id!r} "
                "violates two-phase commit"
            )
        db = self._wrapper.db
        if txn.advance_epoch:
            # The live-ingest path: all staged batches become ONE new
            # epoch, applied atomically (crashes in the simulation land
            # between messages, never inside a handler). Every 2PC
            # participant computes the same committed_epoch + 1
            # independently, so primaries and mirrors advance in lockstep.
            staged = [
                (
                    table,
                    [
                        dict(zip(
                            [n.split(".", 1)[-1] for n in rowset.column_names],
                            row,
                        ))
                        for row in rowset.rows
                    ],
                )
                for table, rowset in txn.staged
            ]
            epoch = db.apply_epoch(staged)
            if self.keep_epochs is not None:
                db.gc_epochs(self.keep_epochs)
            if self.on_epoch_commit is not None:
                self.on_epoch_commit(epoch)
        else:
            for table, rowset in txn.staged:
                names = [
                    name.split(".", 1)[-1] for name in rowset.column_names
                ]
                db.insert(
                    table,
                    [dict(zip(names, row)) for row in rowset.rows],
                )
        txn.staged.clear()
        txn.state = TxnState.COMMITTED
        return True

    def _abort(self, txn_id: str) -> bool:
        txn = self._txns.get(txn_id)
        if txn is None:
            # Aborting an unknown txn is safe (presumed abort).
            self._txns[txn_id] = _Txn(TxnState.ABORTED)
            return True
        if txn.state is TxnState.COMMITTED:
            raise TransactionError(
                f"cannot abort committed transaction {txn_id!r}"
            )
        txn.staged.clear()
        txn.state = TxnState.ABORTED
        return True

    def _status(self, txn_id: str) -> str:
        txn = self._txns.get(txn_id)
        return txn.state.value if txn is not None else "unknown"

    # -- helpers ---------------------------------------------------------------

    def _require(self, txn_id: str) -> _Txn:
        txn = self._txns.get(txn_id)
        if txn is None:
            raise TransactionError(f"unknown transaction {txn_id!r}")
        return txn

    def _validate(self, txn: _Txn) -> str:
        """The prepare-time check: every staged row must be insertable."""
        db = self._wrapper.db
        for table, rowset in txn.staged:
            if not db.has_table(table):
                return f"table {table!r} does not exist"
            schema = db.table(table).schema
            names = [name.split(".", 1)[-1] for name in rowset.column_names]
            for name in names:
                if not schema.has_column(name):
                    return f"table {table!r} has no column {name!r}"
            from repro.errors import SchemaError

            for row in rowset.rows:
                try:
                    schema.coerce_row(dict(zip(names, row)))
                except SchemaError as exc:
                    return str(exc)
        return ""

    def simulate_crash(self) -> None:
        """Lose volatile state: ACTIVE transactions vanish, PREPARED survive.

        Models a participant restart: the staged rows of prepared
        transactions live in its (simulated) write-ahead log, so they are
        retained; everything not yet prepared is gone.
        """
        self._txns = {
            txn_id: txn
            for txn_id, txn in self._txns.items()
            if txn.state is not TxnState.ACTIVE
        }
