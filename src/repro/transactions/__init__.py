"""Transactional data exchange between archives (paper Section 6 extension).

"Another extension is to implement transaction processing for exchange of
data between astronomy archives, and see how the stateless SOAP handles
such complex requirements."

The answer this package demonstrates: SOAP stays stateless — every message
carries its transaction id — while the *endpoints* hold the state. Each
participating SkyNode mounts a :class:`TransactionService` (begin / stage /
prepare / commit / abort, all idempotent where the protocol needs it), and
a :class:`TwoPhaseCoordinator` with a write-ahead log drives the classic
two-phase commit, including recovery of in-doubt transactions after a
coordinator crash. :class:`DataExchange` builds the paper's motivating use
case on top: transactionally replicating a sky region's objects from one
archive into others.
"""

from repro.transactions.service import TransactionService, TxnState
from repro.transactions.coordinator import (
    CoordinatorCrash,
    CoordinatorLog,
    TwoPhaseCoordinator,
)
from repro.transactions.exchange import DataExchange, ExchangeResult

__all__ = [
    "TransactionService",
    "TxnState",
    "CoordinatorCrash",
    "CoordinatorLog",
    "TwoPhaseCoordinator",
    "DataExchange",
    "ExchangeResult",
]
