"""A programmatic live-ingest client for one archive's Ingest service."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import IngestError
from repro.services.client import ServiceProxy
from repro.services.retry import RetryPolicy
from repro.soap.encoding import infer_rowset
from repro.transport.network import SimulatedNetwork

PHASE = "ingest"


@dataclass
class IngestResult:
    """What happened to one upload set."""

    committed: bool
    epoch: int
    txn_id: str
    rows_sent: int
    votes: Dict[str, str] = field(default_factory=dict)
    abort_reason: str = ""


class IngestClient:
    """Uploads row batches to a primary and commits them as one epoch."""

    def __init__(
        self,
        network: SimulatedNetwork,
        ingest_url: str,
        *,
        hostname: str = "ingest.skyquery.net",
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.network = network
        self.hostname = hostname
        self._proxy = ServiceProxy(
            network, hostname, ingest_url, retry_policy=retry_policy
        )

    def begin(self, table: str) -> str:
        """Open an upload session; returns the ingest id."""
        with self.network.phase(PHASE):
            response = self._proxy.call("BeginIngest", table=table)
        if not isinstance(response, dict) or not response.get("ingest_id"):
            raise IngestError(f"malformed BeginIngest response: {response!r}")
        return str(response["ingest_id"])

    def upload(
        self,
        ingest_id: str,
        columns: Sequence[str],
        rows: Sequence[Tuple[Any, ...]],
    ) -> int:
        """Send one batch; returns how many rows the service buffered."""
        with self.network.phase(PHASE):
            accepted = self._proxy.call(
                "UploadBatch",
                ingest_id=ingest_id,
                rows=infer_rowset(list(columns), list(rows)),
            )
        return int(accepted)

    def commit(self, ingest_id: str, *, rows_sent: int = 0) -> IngestResult:
        """Commit every uploaded batch as one new epoch (2PC fan-out)."""
        with self.network.phase(PHASE):
            response = self._proxy.call("CommitEpoch", ingest_id=ingest_id)
        if not isinstance(response, dict):
            raise IngestError(f"malformed CommitEpoch response: {response!r}")
        return IngestResult(
            committed=bool(response.get("committed")),
            epoch=int(response.get("epoch") or 0),
            txn_id=str(response.get("txn_id") or ""),
            rows_sent=rows_sent,
            votes=dict(
                zip(
                    [str(p) for p in response.get("participants") or []],
                    [str(v) for v in response.get("votes") or []],
                )
            ),
            abort_reason=str(response.get("abort_reason") or ""),
        )

    def abort(self, ingest_id: str) -> bool:
        """Discard an open upload session."""
        with self.network.phase(PHASE):
            return bool(self._proxy.call("AbortIngest", ingest_id=ingest_id))

    def epochs(self) -> Dict[str, int]:
        """The archive's ``committed_epoch`` and ``oldest_epoch``."""
        with self.network.phase(PHASE):
            response = self._proxy.call("GetEpoch")
        if not isinstance(response, dict):
            raise IngestError(f"malformed GetEpoch response: {response!r}")
        return {str(k): int(v) for k, v in response.items()}

    def recover(self) -> Dict[str, int]:
        """Ask the primary to replay in-doubt epoch commits from its log."""
        with self.network.phase(PHASE):
            response = self._proxy.call("Recover")
        if not isinstance(response, dict):
            raise IngestError(f"malformed Recover response: {response!r}")
        return {str(k): int(v) for k, v in response.items()}

    def ingest_rows(
        self,
        table: str,
        columns: Sequence[str],
        rows: Sequence[Tuple[Any, ...]],
        *,
        batch_size: int = 200,
    ) -> IngestResult:
        """The whole dance: begin, upload in batches, commit one epoch."""
        if batch_size < 1:
            raise IngestError(f"batch_size must be >= 1, got {batch_size}")
        ingest_id = self.begin(table)
        sent = 0
        rows = list(rows)
        for start in range(0, len(rows), batch_size):
            sent += self.upload(
                ingest_id, columns, rows[start:start + batch_size]
            )
        return self.commit(ingest_id, rows_sent=sent)
