"""Live ingest: batched uploads committed as federation-wide snapshot epochs."""

from repro.ingest.client import IngestClient, IngestResult
from repro.ingest.service import IngestService

__all__ = ["IngestClient", "IngestResult", "IngestService"]
