"""The live-ingest service: batched uploads that commit as snapshot epochs.

The paper's federation is read-only; archives in practice keep observing.
This extension service accepts batched row uploads against a primary
archive and commits each upload set as ONE new snapshot epoch, fanned out
to every replica through the two-phase-commit Transaction services — so
primaries and mirrors advance their epoch counters in lockstep and no
replica ever exposes a partial upload. In-flight queries keep reading the
epoch they were planned at (see ``Portal.submit(pin_epochs=...)``).

Upload sessions are *volatile*: a primary crash before CommitEpoch drops
the session and the client starts over. The 2PC coordinator log is
durable, so a crash mid-decision is replayed by :meth:`IngestService.
_recover` exactly like any other in-doubt transaction.
"""

from __future__ import annotations

import itertools
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ContextManager, Dict, List, Optional

from repro.errors import IngestError, SoapFaultError, TransportError
from repro.services.framework import WebService
from repro.soap.encoding import WireRowSet
from repro.transactions.coordinator import CoordinatorLog, TwoPhaseCoordinator

if TYPE_CHECKING:
    from repro.skynode.node import SkyNode

#: Metrics phase for upload + staging fan-out traffic (the 2PC decision
#: itself stays in the coordinator's "transaction" phase).
PHASE = "ingest"


@dataclass
class _IngestSession:
    """One open upload: batches accumulate until CommitEpoch or abort."""

    table: str
    batches: List[WireRowSet] = field(default_factory=list)

    @property
    def row_count(self) -> int:
        return sum(len(batch.rows) for batch in self.batches)


class IngestService(WebService):
    """``BeginIngest`` / ``UploadBatch`` / ``CommitEpoch`` and friends."""

    def __init__(
        self,
        node: "SkyNode",
        *,
        parser_memory_limit: Optional[int] = None,
    ) -> None:
        super().__init__(
            f"{node.info.archive}Ingest",
            parser_memory_limit=parser_memory_limit,
        )
        self._node = node
        self._sessions: Dict[str, _IngestSession] = {}
        # Per-service (not module-global) so identically built federations
        # mint identical ids — txn-id byte lengths feed the simulated
        # transfer times, and the chaos tests rely on twin determinism.
        self._counter = itertools.count(1)
        #: Durable across simulated crashes: the 2PC write-ahead log.
        self.coordinator_log = CoordinatorLog()
        #: Rows per StageRows call during replica fan-out.
        self.stage_rows_per_call = 500
        self.register(
            "BeginIngest", self._begin,
            params=(("table", "string"),),
            returns="struct",
            doc="Open an upload session against one table; returns its id.",
        )
        self.register(
            "UploadBatch", self._upload,
            params=(("ingest_id", "string"), ("rows", "rowset")),
            returns="int",
            doc="Buffer one batch of rows under an open session (volatile "
                "until CommitEpoch).",
        )
        self.register(
            "CommitEpoch", self._commit_epoch,
            params=(("ingest_id", "string"),),
            returns="struct",
            doc="Stage every buffered batch at this archive AND all of its "
                "replicas, then two-phase commit them as one new snapshot "
                "epoch everywhere.",
        )
        self.register(
            "AbortIngest", self._abort,
            params=(("ingest_id", "string"),),
            returns="boolean",
            doc="Discard an upload session (idempotent).",
        )
        self.register(
            "GetEpoch", self._get_epoch,
            returns="struct",
            doc="The archive's committed and oldest-pinnable epochs.",
        )
        self.register(
            "Recover", self._recover,
            returns="struct",
            doc="Replay in-doubt epoch commits from the durable 2PC log.",
        )

    # -- operations ------------------------------------------------------------

    def _begin(self, table: str) -> Dict[str, Any]:
        db = self._node.db
        if not db.has_table(table):
            raise IngestError(
                f"archive {self._node.info.archive!r} has no table {table!r}"
            )
        ingest_id = (
            f"ing-{self._node.info.archive.lower()}-{next(self._counter)}"
        )
        self._sessions[ingest_id] = _IngestSession(table=table)
        return {"ingest_id": ingest_id}

    def _upload(self, ingest_id: str, rows: WireRowSet) -> int:
        session = self._require(ingest_id)
        if not isinstance(rows, WireRowSet):
            raise IngestError("UploadBatch needs a rowset payload")
        session.batches.append(rows)
        return len(rows.rows)

    def _commit_epoch(self, ingest_id: str) -> Dict[str, Any]:
        session = self._require(ingest_id)
        node = self._node
        network = node.network
        if network is None:
            raise IngestError("ingest requires the node to be attached")
        txn_id = f"{ingest_id}-txn"
        participants = [node.enable_transactions()]
        participants.extend(node.replica_transaction_urls)

        with self._span("ingest-commit"):
            staged = self._stage_everywhere(txn_id, session, participants)
            if not staged:
                # A participant was unreachable mid-staging: no one can
                # vote commit on a partial stage, so presume abort
                # everywhere (best effort — a crashed replica lost its
                # ACTIVE txn anyway and Prepare-on-unknown votes abort).
                self._abort_everywhere(txn_id, participants)
                del self._sessions[ingest_id]
                return {
                    "committed": False,
                    "epoch": node.db.committed_epoch,
                    "txn_id": txn_id,
                    "participants": [],
                    "votes": [],
                    "abort_reason": "staging failed: participant unreachable",
                }
            coordinator = TwoPhaseCoordinator(
                network, node.hostname, self.coordinator_log
            )
            outcome = coordinator.complete(txn_id, participants)
            if network.tracer is not None:
                network.tracer.annotate(
                    "ingest",
                    ingest_id=ingest_id,
                    rows=session.row_count,
                    committed=outcome.committed,
                    epoch=node.db.committed_epoch,
                )
        del self._sessions[ingest_id]
        # Votes travel as parallel arrays: participant URLs cannot be XML
        # element names, so a URL-keyed struct would not encode.
        return {
            "committed": outcome.committed,
            "epoch": node.db.committed_epoch,
            "txn_id": txn_id,
            "participants": list(outcome.votes.keys()),
            "votes": list(outcome.votes.values()),
            "abort_reason": outcome.abort_reason,
        }

    def _abort(self, ingest_id: str) -> bool:
        self._sessions.pop(ingest_id, None)
        return True

    def _get_epoch(self) -> Dict[str, Any]:
        db = self._node.db
        return {
            "committed_epoch": db.committed_epoch,
            "oldest_epoch": db.oldest_epoch,
        }

    def _recover(self) -> Dict[str, Any]:
        node = self._node
        if node.network is None:
            raise IngestError("recover requires the node to be attached")
        coordinator = TwoPhaseCoordinator(
            node.network, node.hostname, self.coordinator_log
        )
        outcomes = coordinator.recover()
        return {
            "replayed": len(outcomes),
            "committed": sum(1 for o in outcomes if o.committed),
            "committed_epoch": node.db.committed_epoch,
        }

    # -- fan-out ---------------------------------------------------------------

    def _stage_everywhere(
        self,
        txn_id: str,
        session: _IngestSession,
        participants: List[str],
    ) -> bool:
        """Begin + stage every batch at every participant; False on failure.

        Staging sequence numbers make retried batches idempotent; an
        unreachable participant aborts the whole upload (no quorum games —
        an epoch exists on every mirror or on none).
        """
        from repro.transport.chunking import chunk_rowset

        node = self._node
        try:
            with node.network.phase(PHASE):
                for url in participants:
                    proxy = node.proxy(url)
                    proxy.call("Begin", txn_id=txn_id, advance_epoch=True)
                    seq = 0
                    for batch in session.batches:
                        for chunk in chunk_rowset(
                            batch, self.stage_rows_per_call
                        ):
                            proxy.call(
                                "StageRows",
                                txn_id=txn_id,
                                table=session.table,
                                rows=chunk,
                                seq=seq,
                            )
                            seq += 1
        except (TransportError, SoapFaultError):
            # Unreachable, or a participant that crashed mid-protocol and
            # lost its ACTIVE transaction — either way the stage set is
            # incomplete and the upload must abort everywhere.
            return False
        return True

    def _abort_everywhere(self, txn_id: str, participants: List[str]) -> None:
        node = self._node
        with node.network.phase(PHASE):
            for url in participants:
                try:
                    node.proxy(url).call("Abort", txn_id=txn_id)
                except TransportError:
                    pass  # presumed abort: Prepare on an unknown txn fails

    # -- helpers ---------------------------------------------------------------

    def _require(self, ingest_id: str) -> _IngestSession:
        session = self._sessions.get(ingest_id)
        if session is None:
            raise IngestError(
                f"unknown ingest session {ingest_id!r} (a primary crash "
                "drops open sessions; begin a new one)"
            )
        return session

    def _span(self, name: str) -> ContextManager:
        network = self._node.network
        if network is None or network.tracer is None:
            return nullcontext(None)
        return network.tracer.span(name, host=self._node.hostname)

    def crash(self) -> None:
        """Lose volatile state: every open upload session vanishes.

        The coordinator log is durable (it models a write-ahead log on
        disk), so in-doubt epoch commits survive for :meth:`_recover`.
        """
        self._sessions.clear()
