"""Command-line interface: demo federations, queries, experiments.

Usage::

    python -m repro info
    python -m repro demo [--bodies N]
    python -m repro query "SELECT ..." [--bodies N] [--strategy S]
                          [--format table|votable|csv]
    python -m repro ingest [--archive A] [--rows N] [--replicas R]
    python -m repro serve [--clients N] [--tenants T] [--cache on|off]
    python -m repro experiments [--ids E1,E4,...] [--out FILE]
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import __version__
from repro.client.formatting import format_table, to_votable
from repro.errors import (
    DeadlineExceededError,
    QueryCancelledError,
    SkyQueryError,
)
from repro.federation.builder import FederationConfig, build_federation
from repro.workloads.skysim import SkyField


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SkyQuery (CIDR 2003) reproduction: a Web-service "
        "federation of astronomy archives.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and component inventory")

    demo = sub.add_parser("demo", help="build a federation, run a sample query")
    _federation_args(demo)

    query = sub.add_parser("query", help="run a cross-match query")
    query.add_argument("sql", help="the SkyQuery SQL text")
    _federation_args(query)
    query.add_argument(
        "--strategy",
        default="count_desc",
        choices=["count_desc", "count_asc", "random", "as_written",
                 "bytes_desc"],
        help="plan ordering strategy (default: the paper's count_desc)",
    )
    query.add_argument(
        "--format", dest="output_format", default="table",
        choices=["table", "votable", "csv"],
        help="result rendering",
    )
    query.add_argument(
        "--stats", action="store_true",
        help="also print per-node and network statistics",
    )
    query.add_argument(
        "--explain", action="store_true",
        help="show the decomposition and plan without executing the chain",
    )

    trace = sub.add_parser(
        "trace",
        help="run a query and print its distributed trace as a flamegraph",
    )
    trace.add_argument(
        "sql", nargs="?", default=None,
        help="the SkyQuery SQL text (default: the demo query)",
    )
    _federation_args(trace)
    trace.add_argument(
        "--strategy",
        default="count_desc",
        choices=["count_desc", "count_asc", "random", "as_written",
                 "bytes_desc"],
        help="plan ordering strategy (default: the paper's count_desc)",
    )
    trace.add_argument(
        "--chrome", default="", metavar="FILE",
        help="also write Chrome trace_event JSON (open in about:tracing "
             "or Perfetto)",
    )
    trace.add_argument(
        "--width", type=int, default=72, metavar="COLS",
        help="flamegraph timeline width in columns (default 72)",
    )

    ingest = sub.add_parser(
        "ingest",
        help="live-ingest demo: upload new observations, commit them as a "
             "snapshot epoch, and show pinned (repeatable) reads",
    )
    _federation_args(ingest)
    ingest.add_argument(
        "--archive", default="SDSS",
        help="archive to ingest into (default SDSS)",
    )
    ingest.add_argument(
        "--rows", type=int, default=120, metavar="N",
        help="new synthetic bodies to observe and upload (default 120)",
    )

    serve = sub.add_parser(
        "serve",
        help="multi-tenant portal driver: run a zipf-repeated concurrent "
             "workload through the query scheduler and semantic cache",
    )
    _federation_args(serve)
    serve.add_argument(
        "--clients", type=int, default=4, metavar="N",
        help="concurrent clients submitting queries (default 4)",
    )
    serve.add_argument(
        "--tenants", type=int, default=2, metavar="T",
        help="tenants the clients are spread across (default 2)",
    )
    serve.add_argument(
        "--queries", type=int, default=12, metavar="Q",
        help="total queries in the workload (default 12)",
    )
    serve.add_argument(
        "--pool", type=int, default=3, metavar="P",
        help="distinct queries in the zipf pool (default 3)",
    )
    serve.add_argument(
        "--zipf", type=float, default=1.1, metavar="S",
        help="zipf skew exponent; higher = hotter head (default 1.1)",
    )
    serve.add_argument(
        "--cache", default="on", choices=["on", "off"],
        help="the Portal's semantic result cache (default on)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=4, metavar="K",
        help="queries executing concurrently per wave (default 4)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64, metavar="M",
        help="queued jobs before enqueue sheds load (default 64)",
    )
    serve.add_argument(
        "--serial", default="on", choices=["on", "off"],
        help="also run the serial uncached baseline on a twin federation "
             "for comparison (default on)",
    )
    serve.add_argument(
        "--deadline", type=float, default=0.0, metavar="S",
        help="end-to-end budget per query in simulated seconds, from "
             "enqueue; jobs that overrun are cancelled and jobs whose "
             "budget dies in the queue are shed undispatched "
             "(default 0: unbounded)",
    )

    experiments = sub.add_parser(
        "experiments", help="run the paper-reproduction experiments"
    )
    experiments.add_argument(
        "--ids", default="",
        help="comma-separated experiment ids (e.g. E1,E4); default: all",
    )
    experiments.add_argument(
        "--out", default="", help="also write a markdown report to this file"
    )
    return parser


def _federation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--bodies", type=int, default=1000,
                        help="synthetic bodies in the field (default 1000)")
    parser.add_argument("--seed", type=int, default=42, help="random seed")
    parser.add_argument("--radius", type=float, default=1800.0,
                        help="field radius in arcseconds (default 1800)")
    parser.add_argument(
        "--retries", type=int, default=0,
        help="retries per RPC after the first attempt (default 0: "
             "single-shot calls)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt request timeout in simulated seconds "
             "(default: no timeout)",
    )
    parser.add_argument(
        "--kernel", default="vectorized",
        choices=["vectorized", "scalar"],
        help="cross-match kernel at every node: the numpy batch kernel "
             "(default) or the per-tuple scalar reference loop",
    )
    parser.add_argument(
        "--match-engine", default=None,
        choices=["htm", "zone"],
        help="spatial index for the cross-match at every node: HTM trixel "
             "covers (the reference oracle) or declination zones with "
             "sorted-merge windows — byte-identical results either way "
             "(default: the SKYQUERY_MATCH_ENGINE env var, else htm)",
    )
    parser.add_argument(
        "--chain-mode", default="store-forward",
        choices=["store-forward", "pipelined"],
        help="chain execution mode: one PerformXMatch round trip "
             "(default, the reference oracle) or pipelined "
             "OpenStream/PullBatch batches with overlapped transfer",
    )
    parser.add_argument(
        "--batch-size", type=int, default=200, metavar="TUPLES",
        help="tuples per batch when the chain is pipelined (default 200)",
    )
    parser.add_argument(
        "--wire-format", default="columnar",
        choices=["columnar", "rows"],
        help="encoding for streamed partial tuples: compact column-major "
             "colset (default) or the classic row-major rowset",
    )
    parser.add_argument(
        "--replicas", type=int, default=0, metavar="N",
        help="replica SkyNodes provisioned per archive (2PC-replicated "
             "mirrors the Portal fails over to; default 0); with --shards "
             "also provisions that many mirrors of each shard",
    )
    parser.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="spatial shards per archive (default 0: monolithic). Each "
             "archive's table is split across N shard SkyNodes by "
             "row-balanced ownership; chain hops scatter-gather across "
             "them with byte-identical results",
    )
    parser.add_argument(
        "--shard-key", default="zone",
        choices=["zone", "htm"],
        help="shard ownership model when --shards > 0: declination-zone "
             "ranges (default; supports per-tuple match routing) or HTM "
             "trixel-prefix intervals (exact AREA pruning, match hops "
             "broadcast)",
    )


def _retry_policy(args: argparse.Namespace):
    from repro.services.retry import RetryPolicy

    if args.retries <= 0 and args.timeout is None:
        return None
    return RetryPolicy(
        max_attempts=max(1, args.retries + 1),
        timeout_s=args.timeout,
        seed=args.seed,
    )


def _make_federation(args: argparse.Namespace, *, ingest: bool = False,
                     **extra):
    config = FederationConfig(
        n_bodies=args.bodies,
        seed=args.seed,
        sky_field=SkyField(185.0, -0.5, args.radius),
        retry_policy=_retry_policy(args),
        xmatch_kernel=args.kernel,
        chain_mode=args.chain_mode,
        stream_batch_size=args.batch_size,
        stream_wire_format=args.wire_format,
        replicas=args.replicas,
        shards=getattr(args, "shards", 0),
        shard_key=getattr(args, "shard_key", "zone"),
        ingest=ingest,
        **extra,
    )
    if args.match_engine is not None:
        config.match_engine = args.match_engine
    return build_federation(config)


DEMO_SQL = """
SELECT O.object_id, O.ra, T.obj_id, O.i_flux - T.i_flux AS color
FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P
WHERE AREA(185.0, -0.5, 900.0) AND XMATCH(O, T, P) < 3.5
  AND O.type = GALAXY
""".strip()


def _cmd_info() -> int:
    print(f"skyquery-repro {__version__}")
    print("Reproduction of: SkyQuery — A Web Service Approach to Federate "
          "Databases (CIDR 2003)")
    print("Components: sphere, htm, db, sql, soap, transport, services,")
    print("            xmatch, skynode, portal, client, federation,")
    print("            workloads, baselines, transactions, bench")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    print(f"Building a 3-archive federation ({args.bodies} bodies)...")
    federation = _make_federation(args)
    print(f"Registered: {federation.portal.catalog.archives()}")
    print(f"\nRunning the paper's sample query:\n{DEMO_SQL}\n")
    result = federation.client().submit(DEMO_SQL)
    print(format_table(result.columns, result.rows, max_rows=10))
    print(f"\n{len(result)} cross matches; counts {result.counts}; "
          f"chain bytes "
          f"{federation.network.metrics.bytes_by_phase().get('crossmatch-chain', 0)}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    federation = _make_federation(args)
    if args.explain:
        plan = federation.client().explain(args.sql, strategy=args.strategy)
        if plan["type"] == "direct":
            print(f"direct route to {plan['archive']}: {plan['sql']}")
            return 0
        print(f"strategy: {plan['strategy']}   counts: {plan['counts']}   "
              f"would execute: {plan['would_execute']}")
        print("performance queries:")
        for alias, sql in plan["performance_queries"].items():
            print(f"  {alias}: {sql}")
        print("plan list (first = largest, executes last):")
        for step in plan["plan"]["steps"]:
            role = "dropout" if step["dropout"] else f"count={step['count_star']}"
            print(f"  {step['alias']} @ {step['archive']} ({role}): "
                  f"{step['sql']}")
        if plan["cross_conjuncts"]:
            print(f"portal-side predicates: {plan['cross_conjuncts']}")
        return 0
    result = federation.client().submit(args.sql, strategy=args.strategy)
    if args.output_format == "votable":
        print(to_votable(result.columns, result.rows))
    elif args.output_format == "csv":
        print(",".join(result.columns))
        for row in result.rows:
            print(",".join("" if v is None else str(v) for v in row))
    else:
        print(format_table(result.columns, result.rows))
    if result.degraded:
        print("\nwarning: degraded result", file=sys.stderr)
        for warning in result.warnings:
            print(f"  - {warning}", file=sys.stderr)
    elif result.failovers:
        print(f"\nnote: {result.failovers} endpoint failover(s); "
              "result is complete", file=sys.stderr)
        for warning in result.warnings:
            print(f"  - {warning}", file=sys.stderr)
    if args.stats:
        print(f"\nrows: {len(result)}  counts: {result.counts}")
        for stats in result.node_stats:
            print(
                f"  {stats['archive']:<8} {stats['role']:<7} "
                f"in={stats['tuples_in']} out={stats['tuples_out']} "
                f"examined={stats['rows_examined']}"
            )
        phases = federation.network.metrics.bytes_by_phase()
        for phase, total in sorted(phases.items()):
            print(f"  {phase:<18} {total} B")
        metrics = federation.network.metrics
        if metrics.retries or metrics.timeouts or metrics.faults:
            print(f"  retries={metrics.retries} timeouts={metrics.timeouts} "
                  f"faults={metrics.faults}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.tracing import render_flamegraph, to_chrome_trace_json

    federation = _make_federation(args)
    tracer = federation.tracer
    if tracer is None:
        print("error: the federation was built without tracing",
              file=sys.stderr)
        return 2
    sql = args.sql or DEMO_SQL
    # Drop registration-time traces so the query's trace stands alone.
    tracer.reset()
    result = federation.client().submit(sql, strategy=args.strategy)
    trace = tracer.trace()
    print(render_flamegraph(trace, width=args.width))
    if result.degraded:
        print("\nwarning: degraded result", file=sys.stderr)
        for warning in result.warnings:
            print(f"  - {warning}", file=sys.stderr)
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as handle:
            handle.write(to_chrome_trace_json(trace, indent=2))
        print(f"wrote {args.chrome}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.workloads.skysim import generate_bodies, observe_survey

    federation = _make_federation(args, ingest=True)
    config = federation.config
    surveys = {spec.archive: spec for spec in config.surveys}
    if args.archive not in surveys:
        print(f"error: unknown archive {args.archive!r}; "
              f"choose from {sorted(surveys)}", file=sys.stderr)
        return 2
    survey = surveys[args.archive]
    client = federation.client()

    before = client.submit(DEMO_SQL)
    print(f"before ingest: {len(before)} matches, epochs {before.epochs}")

    observation = observe_survey(
        survey,
        generate_bodies(config.sky_field, args.rows, config.seed + 1),
        config.seed + 1,
    )
    columns = list(observation.rows[0].keys())
    rows = [tuple(row[c] for c in columns) for row in observation.rows]
    result = federation.ingest_client(args.archive).ingest_rows(
        survey.primary_table, columns, rows
    )
    if not result.committed:
        print(f"error: ingest aborted: {result.abort_reason}",
              file=sys.stderr)
        return 2
    print(f"ingested {result.rows_sent} rows into {args.archive} as epoch "
          f"{result.epoch} (txn {result.txn_id}, "
          f"{len(result.votes)} participant(s) voted commit)")
    for replica in federation.replicas.get(args.archive, []):
        print(f"  replica {replica.hostname}: epoch "
              f"{replica.db.committed_epoch}, "
              f"{replica.db.count_rows(survey.primary_table)} rows")

    after = client.submit(DEMO_SQL)
    print(f"after ingest:  {len(after)} matches, epochs {after.epochs}")
    pinned = federation.portal.submit(DEMO_SQL, pin_epochs=before.epochs)
    repeatable = sorted(pinned.rows) == sorted(before.rows)
    print(f"pinned re-read at {before.epochs}: {len(pinned.rows)} matches, "
          f"identical to pre-ingest: {repeatable}")
    return 0 if repeatable else 1


def _percentile(values, q: float) -> float:
    """Nearest-rank percentile of an unsorted sequence (q in [0, 100])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _cmd_serve(args: argparse.Namespace) -> int:
    from collections import defaultdict

    from repro.bench.scenarios import zipf_workload
    from repro.portal.scheduler import SchedulerConfig

    for name in ("clients", "tenants", "queries", "pool"):
        if getattr(args, name) < 1:
            print(f"error: --{name} must be >= 1", file=sys.stderr)
            return 2

    print(f"Building a 3-archive federation ({args.bodies} bodies, "
          f"scheduler max_inflight={args.max_inflight}, "
          f"cache {args.cache})...")
    federation = _make_federation(
        args,
        scheduler=SchedulerConfig(
            max_inflight=args.max_inflight, max_queue=args.max_queue
        ),
        cache=(args.cache == "on"),
    )
    scheduler = federation.scheduler
    assert scheduler is not None

    # Client c acts for tenant c % T; job i is submitted by client i % N.
    tenants = [
        f"tenant-{client % args.tenants}" for client in range(args.clients)
    ]
    jobs = zipf_workload(
        args.queries, args.pool, s=args.zipf, seed=args.seed, tenants=tenants
    )
    if args.deadline > 0:
        budget_start = federation.network.clock.now
        for job in jobs:
            job["deadline_s"] = budget_start + args.deadline
    print(f"{args.queries} queries from {args.clients} client(s) across "
          f"{args.tenants} tenant(s); zipf(s={args.zipf}) over a pool of "
          f"{args.pool}"
          + (f"; per-query budget {args.deadline}s" if args.deadline > 0
             else "") + "\n")

    start = federation.network.clock.now
    interrupted = False
    try:
        outcomes = scheduler.run(jobs)
    except KeyboardInterrupt:
        # Graceful shutdown: stop admission, cancel what is still queued
        # (the nodes' state for dispatched queries was already freed by
        # their own deadline/cancel path), report, and exit cleanly.
        interrupted = True
        outcomes = scheduler.drain(stop_admission=True, cancel_queued=True)
        print(f"\ninterrupted — drained scheduler: "
              f"{scheduler.stats.cancelled} queued job(s) cancelled, "
              f"{scheduler.stats.completed} completed before shutdown")
    makespan = federation.network.clock.now - start

    finished = [o for o in outcomes if o.result is not None]
    shed = [o for o in outcomes
            if isinstance(o.error, (DeadlineExceededError,
                                    QueryCancelledError))]
    failed = [o for o in outcomes if o.error is not None and o not in shed]
    expired_results = [
        o for o in finished
        if o.result.degraded
        and any("deadline exceeded" in w for w in o.result.warnings)
    ]
    latencies = [o.latency_s for o in finished]
    by_tenant: dict = defaultdict(list)
    for outcome in outcomes:
        by_tenant[outcome.job.tenant].append(outcome)
    for tenant in sorted(by_tenant):
        mine = by_tenant[tenant]
        done = [o for o in mine if o.result is not None]
        hits = sum(1 for o in done if o.cache is not None)
        mean = (sum(o.latency_s for o in done) / len(done)) if done else 0.0
        line = (f"  {tenant:<12} completed={len(done)} cache_hits={hits} "
                f"mean_latency={mean:.3f}s")
        tenant_shed = sum(1 for o in mine if o in shed)
        if tenant_shed:
            line += f" shed={tenant_shed}"
        print(line)
    print(f"\nwaves={scheduler.stats.waves}  completed={len(finished)}  "
          f"failed={len(failed)}  shed={len(shed)}  "
          f"rejected={scheduler.stats.rejected}")
    if scheduler.stats.rejected or shed:
        print(f"backpressure: retry_after~{scheduler.retry_after_s():.3f}s "
              f"(expired={scheduler.stats.expired} "
              f"cancelled={scheduler.stats.cancelled})")
    if expired_results:
        print(f"deadline-degraded answers: {len(expired_results)} "
              f"(budget died mid-chain; state cancelled eagerly)")
    print(f"latency p50={_percentile(latencies, 50):.3f}s  "
          f"p99={_percentile(latencies, 99):.3f}s  "
          f"makespan={makespan:.3f}s")
    if federation.cache is not None:
        print(f"cache: {federation.cache.stats.as_dict()}")
    for outcome in failed:
        print(f"  failed seq={outcome.job.seq} ({outcome.job.tenant}): "
              f"{outcome.error}", file=sys.stderr)

    if interrupted:
        return 0
    if args.serial == "off":
        return 0 if not failed else 1

    # Serial uncached baseline: a twin federation answers the identical
    # workload one query at a time, no scheduler, no cache.
    twin = _make_federation(args)
    serial_latencies = []
    answers: dict = {}
    t0 = twin.network.clock.now
    for job in jobs:
        q0 = twin.network.clock.now
        result = twin.portal.submit(job["sql"])
        serial_latencies.append(twin.network.clock.now - q0)
        answers[job["sql"]] = sorted(result.rows)
    serial_makespan = twin.network.clock.now - t0
    # Deadline-degraded answers are empty by design; only budget-clean
    # completions must match the unbounded serial baseline byte for byte.
    clean = [o for o in finished if o not in expired_results]
    identical = all(
        sorted(o.result.rows) == answers[o.job.sql] for o in clean
    )
    print(f"\nserial uncached baseline: "
          f"p50={_percentile(serial_latencies, 50):.3f}s  "
          f"p99={_percentile(serial_latencies, 99):.3f}s  "
          f"makespan={serial_makespan:.3f}s")
    if makespan > 0:
        print(f"speedup: {serial_makespan / makespan:.2f}x makespan")
    print(f"scheduled answers identical to serial: {identical}")
    return 0 if identical and not failed else 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench import ALL_EXPERIMENTS

    wanted = {
        token.strip().upper()
        for token in args.ids.split(",")
        if token.strip()
    }
    reports = []
    for runner in ALL_EXPERIMENTS:
        report = None
        # Run only experiments whose id is requested (cheap check by name).
        exp_id = runner.__name__.split("_")[1].upper()  # run_e4_... -> E4
        if wanted and exp_id not in wanted:
            continue
        report = runner()
        reports.append(report)
        print(report.to_text())
        print()
    if not reports:
        print(f"no experiments matched ids {sorted(wanted)!r}",
              file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write("\n".join(r.to_markdown() for r in reports))
        print(f"wrote {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "experiments":
            return _cmd_experiments(args)
    except SkyQueryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0
