"""Survey presets modeled on the paper's three federated archives.

The sample query in Section 5.2 joins SDSS:Photo_Object,
TWOMASS:Photo_Primary and FIRST:Primary_Object; the presets here use those
table names, plausible per-survey positional errors, different detection
rates (FIRST is a radio survey — most optical objects are radio-quiet,
which is what makes the ``!P`` drop-out query astronomically interesting),
and deliberately different schema/dialect personalities to exercise the
wrapper's heterogeneity-hiding.
"""

from __future__ import annotations

from typing import List

from repro.workloads.skysim import SurveySpec

#: Optical survey, sub-arcsecond astrometry, deep object counts.
SDSS = SurveySpec(
    archive="SDSS",
    sigma_arcsec=0.1,
    detection_rate=0.95,
    primary_table="Photo_Object",
    object_id_column="object_id",
    ra_column="ra",
    dec_column="dec",
    bands=("u", "g", "r", "i", "z"),
    has_type=True,
    dialect="sqlserver",
    flux_offset=0.0,
)

#: Near-infrared survey; coarser astrometry, different column names.
TWOMASS = SurveySpec(
    archive="TWOMASS",
    sigma_arcsec=0.3,
    detection_rate=0.85,
    primary_table="Photo_Primary",
    object_id_column="obj_id",
    ra_column="ra_deg",
    dec_column="dec_deg",
    bands=("j", "h", "k", "i"),
    has_type=False,
    dialect="postgres",
    flux_offset=-2.5,
)

#: Radio survey; detects a minority of optical objects (drop-out queries).
FIRST = SurveySpec(
    archive="FIRST",
    sigma_arcsec=1.0,
    detection_rate=0.30,
    primary_table="Primary_Object",
    object_id_column="object_id",
    ra_column="ra",
    dec_column="dec",
    bands=("radio",),
    has_type=False,
    dialect="ansi",
    flux_offset=3.0,
)


def default_surveys() -> List[SurveySpec]:
    """The paper's three archives."""
    return [SDSS, TWOMASS, FIRST]
