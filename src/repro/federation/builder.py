"""One-call construction of a complete SkyQuery federation."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.client.client import SkyQueryClient
from repro.db.engine import Database
from repro.db.table import SpatialSpec
from repro.errors import ConfigurationError, RegistrationError
from repro.federation.surveys import default_surveys
from repro.portal.cache import CacheConfig, SemanticCache
from repro.portal.portal import Portal
from repro.portal.scheduler import QueryScheduler, SchedulerConfig
from repro.services.retry import RetryPolicy
from repro.shard import SHARD_KEYS
from repro.skynode.node import DEFAULT_PARSER_MEMORY_LIMIT, SkyNode
from repro.skynode.wrapper import ArchiveInfo
from repro.sql.ast import AreaClause
from repro.transport.faults import FaultPlan
from repro.transport.network import SimulatedNetwork
from repro.workloads.skysim import (
    SkyField,
    SurveySpec,
    TrueBody,
    generate_bodies,
    observe_survey,
)


@dataclass
class FederationConfig:
    """Knobs for :func:`build_federation`."""

    surveys: Sequence[SurveySpec] = field(default_factory=default_surveys)
    sky_field: SkyField = field(default_factory=SkyField)
    n_bodies: int = 2000
    seed: int = 1234
    htm_depth: int = 12
    page_size: int = 64
    buffer_pages: int = 512
    default_latency_s: float = 0.05
    default_bandwidth_bps: float = 1_000_000.0
    parser_memory_limit: Optional[int] = DEFAULT_PARSER_MEMORY_LIMIT
    parser_overhead_factor: float = 4.0
    chunk_budget_bytes: Optional[int] = None
    #: Per-row scan cost charged to the simulated clock (paper Section 5.3
    #: counts processing alongside transmission). 5 microseconds/row by
    #: default — a 2002-era disk-backed scan rate of ~200k rows/s.
    processing_seconds_per_row: float = 5e-6
    #: Retry/timeout/breaker configuration for the Portal and every node's
    #: outbound calls. None keeps single-shot RPCs (the seed's behaviour).
    retry_policy: Optional[RetryPolicy] = None
    #: Portal pings archives before planning (graceful degradation).
    health_probes: bool = True
    #: Which sp_xmatch kernel every node runs: ``vectorized`` (the numpy
    #: batch kernel, default) or ``scalar`` (the per-tuple reference loop).
    xmatch_kernel: str = "vectorized"
    #: Which spatial index every node's cross-match uses: ``htm`` (trixel
    #: covers, the default and reference oracle) or ``zone`` (declination
    #: zones with sorted-merge windows). Federated results, node stats,
    #: and wire traffic are byte-identical either way. Defaults to the
    #: ``SKYQUERY_MATCH_ENGINE`` environment variable when set, so test
    #: suites can run under both engines without code changes.
    match_engine: str = field(
        default_factory=lambda: os.environ.get("SKYQUERY_MATCH_ENGINE", "htm")
    )
    #: Scripted transient faults, installed only AFTER registration
    #: completes so federation construction is never fault-injected.
    fault_plan: Optional[FaultPlan] = None
    #: How the Portal drives the chain: ``store-forward`` (one
    #: PerformXMatch round trip, the reference oracle) or ``pipelined``
    #: (OpenStream/PullBatch batches pulled concurrently so transfer
    #: overlaps compute).
    chain_mode: str = "store-forward"
    #: Tuples per batch when the chain is pipelined.
    stream_batch_size: int = 200
    #: Wire encoding for streamed partial tuples: ``columnar`` (compact
    #: column-major colset) or ``rows`` (classic rowset).
    stream_wire_format: str = "columnar"
    #: Replica SkyNodes provisioned per archive (0 = none). Each replica is
    #: a full mirror: its own database is populated from the primary over
    #: the transactional region-replication exchange (2PC), and its
    #: endpoints are advertised to the Portal as failover candidates.
    #: With ``shards`` > 0 the same count also provisions mirrors of each
    #: *shard*, advertised as that shard's endpoint candidates.
    replicas: int = 0
    #: Spatial shards per archive (0 = monolithic, the seed's behaviour;
    #: 1 is a legal single-shard layout that still exercises the
    #: scatter-gather path). Each archive's table is split across this
    #: many shard SkyNodes by row-balanced ownership planning; the
    #: primary keeps its full copy (the provisioning source and the
    #: single-archive/count-probe fallback) and re-registers advertising
    #: the layout, after which its chain hops fan out to the shards and
    #: merge in canonical order. Incompatible with ``ingest``.
    shards: int = 0
    #: Ownership model when ``shards`` > 0: ``zone`` (declination-zone
    #: ranges — supports per-tuple match-hop routing) or ``htm``
    #: (trixel-prefix id intervals — exact AREA pruning, but match hops
    #: broadcast).
    shard_key: str = "zone"
    #: Install a distributed :class:`~repro.tracing.Tracer` on the network.
    #: Off, no trace headers ride in any envelope — the wire traffic is
    #: byte-identical to the pre-tracing federation.
    tracing: bool = True
    #: Mount the live-ingest extension on every primary: batched uploads
    #: commit as snapshot epochs, fanned out to all replicas under 2PC.
    ingest: bool = False
    #: How many past epochs stay pinnable after each ingest commit before
    #: epoch GC reclaims them (``None`` retains every epoch forever).
    keep_epochs: Optional[int] = 8
    #: Install an admission-controlled multi-tenant run queue on the
    #: Portal (``federation.scheduler``): ``True`` for the defaults, a
    #: :class:`~repro.portal.scheduler.SchedulerConfig` for tuned knobs,
    #: ``None``/``False`` for the seed's one-query-at-a-time behaviour.
    scheduler: Union[None, bool, SchedulerConfig] = None
    #: Install the epoch-aware semantic result cache on the Portal
    #: (``portal.cache``): ``True`` for the defaults, a
    #: :class:`~repro.portal.cache.CacheConfig` for tuned knobs,
    #: ``None``/``False`` for no caching. With ``ingest=True`` every
    #: primary's epoch commits are chained into the cache's invalidation
    #: hook automatically.
    cache: Union[None, bool, CacheConfig] = None


@dataclass
class Federation:
    """A running federation and everything needed to poke at it."""

    config: FederationConfig
    network: SimulatedNetwork
    portal: Portal
    nodes: Dict[str, SkyNode]
    bodies: List[TrueBody]
    truth: Dict[str, Dict[int, int]]  # archive -> object_id -> body_id
    #: Replica SkyNodes keyed by archive (empty unless config.replicas > 0).
    replicas: Dict[str, List[SkyNode]] = field(default_factory=dict)
    #: Shard SkyNodes (primaries) keyed by archive, in ownership order
    #: (empty unless config.shards > 0).
    shards: Dict[str, List[SkyNode]] = field(default_factory=dict)
    #: Shard replica SkyNodes: archive -> shard name -> mirrors.
    shard_replicas: Dict[str, Dict[str, List[SkyNode]]] = field(
        default_factory=dict
    )

    def client(self, hostname: str = "client.skyquery.net") -> SkyQueryClient:
        """A client wired to this federation's Portal."""
        return SkyQueryClient(
            self.network,
            self.portal.service_url("skyquery"),
            hostname=hostname,
            retry_policy=self.config.retry_policy,
        )

    def node(self, archive: str) -> SkyNode:
        """A SkyNode by archive name."""
        return self.nodes[archive]

    def ingest_client(
        self, archive: str, hostname: str = "ingest.skyquery.net"
    ):
        """A live-ingest client wired to one archive's Ingest service."""
        from repro.ingest.client import IngestClient

        node = self.nodes[archive]
        if node.ingest is None:
            raise RegistrationError(
                f"archive {archive!r} has no Ingest service "
                "(build the federation with ingest=True)"
            )
        return IngestClient(
            self.network,
            node.host.url_for("/ingest"),
            hostname=hostname,
            retry_policy=self.config.retry_policy,
        )

    @property
    def tracer(self):
        """The network's tracer (None when built with ``tracing=False``)."""
        return self.network.tracer

    @property
    def scheduler(self):
        """The Portal's run queue (None unless built with ``scheduler=``)."""
        return self.portal.scheduler

    @property
    def cache(self):
        """The Portal's semantic cache (None unless built with ``cache=``)."""
        return self.portal.cache


#: Legal values of the enumerated FederationConfig knobs, checked up front
#: by :func:`build_federation` — an unknown value would otherwise fall
#: through silently into node config and only blow up (or worse, be
#: ignored) deep inside the first query.
_CONFIG_CHOICES = {
    "xmatch_kernel": ("vectorized", "scalar"),
    "match_engine": ("htm", "zone"),
    "chain_mode": ("store-forward", "pipelined"),
    "stream_wire_format": ("columnar", "rows"),
}


def _validate_config(config: FederationConfig) -> None:
    """Reject unsupported enumerated knob values with an actionable error."""
    for knob, choices in _CONFIG_CHOICES.items():
        value = getattr(config, knob)
        if value not in choices:
            raise ConfigurationError(
                f"FederationConfig.{knob}={value!r} is not supported; "
                f"expected one of {choices}"
            )
    if not (
        config.scheduler is None
        or isinstance(config.scheduler, (bool, SchedulerConfig))
    ):
        raise ConfigurationError(
            f"FederationConfig.scheduler={config.scheduler!r} is not "
            "supported; expected None, a bool, or a SchedulerConfig"
        )
    if not (
        config.cache is None or isinstance(config.cache, (bool, CacheConfig))
    ):
        raise ConfigurationError(
            f"FederationConfig.cache={config.cache!r} is not supported; "
            "expected None, a bool, or a CacheConfig"
        )
    if config.shards < 0:
        raise ConfigurationError(
            f"FederationConfig.shards must be >= 0, got {config.shards}"
        )
    if config.shards and config.shard_key not in SHARD_KEYS:
        raise ConfigurationError(
            f"FederationConfig.shard_key={config.shard_key!r} is not "
            f"supported; expected one of {SHARD_KEYS}"
        )
    if config.shards and config.ingest:
        # Shard ownership is planned once, from the provisioning-time row
        # distribution; live ingest would route new rows nowhere. Until
        # ingest learns to split batches by ownership the combination is
        # rejected rather than silently wrong.
        raise ConfigurationError(
            "FederationConfig.shards cannot be combined with ingest"
        )


def build_federation(config: Optional[FederationConfig] = None) -> Federation:
    """Generate the sky, load the archives, register everyone.

    The registration handshake is performed over the simulated network with
    real SOAP messages, so even a freshly built federation already has
    "registration"-phase traffic in its metrics.
    """
    config = config or FederationConfig()
    _validate_config(config)
    network = SimulatedNetwork(
        default_latency_s=config.default_latency_s,
        default_bandwidth_bps=config.default_bandwidth_bps,
    )
    if config.tracing:
        from repro.tracing.tracer import Tracer

        network.install_tracer(Tracer())
    portal = Portal(
        retry_policy=config.retry_policy,
        health_probes=config.health_probes,
        chain_mode=config.chain_mode,
        stream_batch_size=config.stream_batch_size,
        stream_wire_format=config.stream_wire_format,
        xmatch_kernel=config.xmatch_kernel,
        match_engine=config.match_engine,
    )
    if config.cache:
        portal.cache = SemanticCache(
            config.cache if isinstance(config.cache, CacheConfig) else None
        )
    if config.scheduler:
        portal.scheduler = QueryScheduler(
            portal,
            config.scheduler
            if isinstance(config.scheduler, SchedulerConfig)
            else None,
        )
    portal.attach(network)

    bodies = generate_bodies(config.sky_field, config.n_bodies, config.seed)
    nodes: Dict[str, SkyNode] = {}
    truth: Dict[str, Dict[int, int]] = {}
    for survey in config.surveys:
        db = Database(
            survey.archive.lower(),
            dialect=survey.dialect,
            page_size=config.page_size,
            buffer_pages=config.buffer_pages,
        )
        db.create_table(
            survey.primary_table,
            survey.columns(),
            spatial=SpatialSpec(
                survey.ra_column, survey.dec_column, htm_depth=config.htm_depth
            ),
        )
        observation = observe_survey(survey, bodies, config.seed)
        db.insert(survey.primary_table, observation.rows)
        truth[survey.archive] = observation.truth

        footprint = survey.footprint
        info = ArchiveInfo(
            archive=survey.archive,
            sigma_arcsec=survey.sigma_arcsec,
            primary_table=survey.primary_table,
            object_id_column=survey.object_id_column,
            ra_column=survey.ra_column,
            dec_column=survey.dec_column,
            footprint_ra_deg=footprint.center_ra_deg if footprint else None,
            footprint_dec_deg=footprint.center_dec_deg if footprint else None,
            footprint_radius_arcsec=(
                footprint.radius_arcsec if footprint else None
            ),
        )
        node = SkyNode(
            db,
            info,
            parser_memory_limit=config.parser_memory_limit,
            parser_overhead_factor=config.parser_overhead_factor,
            chunk_budget_bytes=config.chunk_budget_bytes,
            processing_seconds_per_row=config.processing_seconds_per_row,
            retry_policy=config.retry_policy,
            xmatch_kernel=config.xmatch_kernel,
            match_engine=config.match_engine,
        )
        node.attach(network)
        node.register_with_portal(portal.service_url("registration"))
        nodes[survey.archive] = node

    replicas: Dict[str, List[SkyNode]] = {}
    if config.replicas > 0:
        for survey in config.surveys:
            replicas[survey.archive] = _provision_replicas(
                config, network, nodes[survey.archive], survey, portal
            )

    shard_nodes: Dict[str, List[SkyNode]] = {}
    shard_replica_nodes: Dict[str, Dict[str, List[SkyNode]]] = {}
    if config.shards > 0:
        for survey in config.surveys:
            provisioned, mirrors = _provision_shards(
                config,
                network,
                nodes[survey.archive],
                survey,
                portal,
                replicas.get(survey.archive, []),
            )
            shard_nodes[survey.archive] = provisioned
            shard_replica_nodes[survey.archive] = mirrors

    if config.ingest:
        for archive, node in nodes.items():
            replica_urls = []
            for replica in replicas.get(archive, []):
                # Mirrors participate in every epoch commit, so they need
                # the same retention policy + stale-pin reaping wiring —
                # epoch counters and GC floors advance in lockstep.
                replica_urls.append(replica.enable_transactions())
                replica.transaction.keep_epochs = config.keep_epochs
                replica.transaction.on_epoch_commit = (
                    lambda _epoch, r=replica: r.crossmatch.reap_stale_epochs()
                )
            node.enable_ingest(
                keep_epochs=config.keep_epochs,
                replica_transaction_urls=replica_urls,
            )
            if portal.cache is not None:
                # Chain cache invalidation onto the primary's commit hook
                # (after stale-pin reaping): the instant an epoch lands,
                # every cached answer pinned to this archive's previous
                # epoch is dropped.
                previous = node.transaction.on_epoch_commit

                def _note_epoch(
                    epoch: int,
                    archive: str = archive,
                    previous=previous,
                ) -> None:
                    if previous is not None:
                        previous(epoch)
                    portal.cache.note_epoch(archive, epoch)

                node.transaction.on_epoch_commit = _note_epoch

    if config.fault_plan is not None:
        network.set_fault_plan(config.fault_plan)

    return Federation(
        config=config,
        network=network,
        portal=portal,
        nodes=nodes,
        bodies=bodies,
        truth=truth,
        replicas=replicas,
        shards=shard_nodes,
        shard_replicas=shard_replica_nodes,
    )


def _provision_replicas(
    config: FederationConfig,
    network: SimulatedNetwork,
    primary: SkyNode,
    survey: SurveySpec,
    portal: Portal,
) -> List[SkyNode]:
    """Stand up ``config.replicas`` mirror SkyNodes for one archive.

    Each replica starts with an *empty* copy of the primary table (same
    spatial indexing) and is filled over the wire: the transactional
    region-replication exchange pulls the primary's rows through its Query
    service and commits them at the replica under 2PC — so a replica is
    provisioned exactly the way two real archives would exchange data,
    never by reaching into the primary's database object. The primary then
    re-registers, advertising the replicas' endpoints as failover
    candidates.
    """
    from repro.transactions.exchange import DataExchange

    info = primary.info
    field_ = config.sky_field
    # Generous circle: every observed position (field radius + positional
    # scatter) falls inside it, so the replica is a complete mirror.
    everything = AreaClause(
        field_.center_ra_deg,
        field_.center_dec_deg,
        field_.radius_arcsec * 4.0,
    )
    column_names = [column.name for column in survey.columns()]
    replica_nodes: List[SkyNode] = []
    for index in range(1, config.replicas + 1):
        replica_db = Database(
            f"{survey.archive.lower()}_r{index}",
            dialect=survey.dialect,
            page_size=config.page_size,
            buffer_pages=config.buffer_pages,
        )
        replica_db.create_table(
            survey.primary_table,
            survey.columns(),
            spatial=SpatialSpec(
                survey.ra_column, survey.dec_column, htm_depth=config.htm_depth
            ),
        )
        replica = SkyNode(
            replica_db,
            info,
            hostname=f"{survey.archive.lower()}-r{index}.skyquery.net",
            parser_memory_limit=config.parser_memory_limit,
            parser_overhead_factor=config.parser_overhead_factor,
            chunk_budget_bytes=config.chunk_budget_bytes,
            processing_seconds_per_row=config.processing_seconds_per_row,
            retry_policy=config.retry_policy,
            xmatch_kernel=config.xmatch_kernel,
            match_engine=config.match_engine,
        )
        replica.attach(network)
        replica_key = f"{survey.archive}-r{index}"
        exchange = DataExchange(
            portal, {replica_key: replica.enable_transactions()}
        )
        result = exchange.replicate_region(
            survey.archive,
            [replica_key],
            everything,
            columns=column_names,
            target_table=survey.primary_table,
        )
        if not result.committed:
            raise RegistrationError(
                f"replica provisioning for {survey.archive!r} aborted: "
                f"{result.abort_reason}"
            )
        replica_nodes.append(replica)
    primary.register_with_portal(
        portal.service_url("registration"),
        replicas=[replica.service_urls() for replica in replica_nodes],
    )
    return replica_nodes


def _make_shard_node(
    config: FederationConfig,
    network: SimulatedNetwork,
    survey: SurveySpec,
    info: ArchiveInfo,
    db_name: str,
    hostname: str,
    pos_column: str,
) -> SkyNode:
    """One empty shard (or shard-replica) SkyNode for an archive slice.

    The table schema is the survey's plus a trailing position column
    recording each row's index in the *primary's* scan order — what lets
    a scatter-gather merge reproduce the monolithic result order. Every
    execution knob matches the primary's, so a shard computes exactly
    what the primary would over its slice.
    """
    from repro.db.schema import Column
    from repro.db.types import ColumnType

    db = Database(
        db_name,
        dialect=survey.dialect,
        page_size=config.page_size,
        buffer_pages=config.buffer_pages,
    )
    db.create_table(
        survey.primary_table,
        list(survey.columns())
        + [Column(pos_column, ColumnType.INT, nullable=True)],
        spatial=SpatialSpec(
            survey.ra_column, survey.dec_column, htm_depth=config.htm_depth
        ),
    )
    node = SkyNode(
        db,
        info,
        hostname=hostname,
        parser_memory_limit=config.parser_memory_limit,
        parser_overhead_factor=config.parser_overhead_factor,
        chunk_budget_bytes=config.chunk_budget_bytes,
        processing_seconds_per_row=config.processing_seconds_per_row,
        retry_policy=config.retry_policy,
        xmatch_kernel=config.xmatch_kernel,
        match_engine=config.match_engine,
    )
    node.attach(network)
    return node


def _provision_shards(
    config: FederationConfig,
    network: SimulatedNetwork,
    primary: SkyNode,
    survey: SurveySpec,
    portal: Portal,
    archive_replicas: List[SkyNode],
):
    """Split one archive's table across ``config.shards`` shard SkyNodes.

    Ownership is planned from the primary's actual row distribution
    (zone-id or HTM-id quantiles), the rows are pulled once over the wire
    with their scan positions appended, partitioned by ownership, and
    staged to every shard (and each shard's mirrors) under ONE 2PC — the
    federation never observes a half-sharded archive. The primary keeps
    its full copy and re-registers, advertising the layout; the primary
    and its archive replicas all learn the ShardSet so whichever of them
    coordinates a chain hop fans out identically.

    Returns ``(shard_primaries, {shard_name: [mirrors]})``.
    """
    from repro.htm.index import id_for_point
    from repro.shard import (
        HTM_KEY,
        plan_htm_ownership,
        plan_zone_ownership,
    )
    from repro.shard.topology import ShardMember, ShardSet
    from repro.skynode.crossmatch import SHARD_POS_COLUMN
    from repro.soap.encoding import WireRowSet
    from repro.sphere.coords import radec_to_vector
    from repro.transactions.exchange import DataExchange

    info = primary.info
    column_names = [column.name for column in survey.columns()]
    ra_idx = column_names.index(info.ra_column)
    dec_idx = column_names.index(info.dec_column)

    puller = DataExchange(portal, {})
    rowset = puller.pull_table_with_positions(
        survey.archive, column_names, position_column=SHARD_POS_COLUMN
    )
    if config.shard_key == HTM_KEY:
        hids = [
            id_for_point(
                radec_to_vector(float(row[ra_idx]), float(row[dec_idx])),
                config.htm_depth,
            )
            for row in rowset.rows
        ]
        ownerships = plan_htm_ownership(
            hids, config.shards, config.htm_depth
        )
    else:
        hids = [0] * len(rowset.rows)
        ownerships = plan_zone_ownership(
            [float(row[dec_idx]) for row in rowset.rows],
            config.shards,
            htm_depth=config.htm_depth,
        )

    partitions: List[List[tuple]] = [[] for _ in ownerships]
    for row, hid in zip(rowset.rows, hids):
        dec = float(row[dec_idx])
        for index, ownership in enumerate(ownerships):
            if not ownership.empty and ownership.owns(dec, hid):
                partitions[index].append(tuple(row))
                break
        else:  # pragma: no cover - ownerships cover the whole key space
            raise RegistrationError(
                f"row at dec {dec} of {survey.archive!r} has no owning shard"
            )

    shard_primaries: List[SkyNode] = []
    shard_mirrors: Dict[str, List[SkyNode]] = {}
    members: List[ShardMember] = []
    transaction_urls: Dict[str, str] = {}
    assignments: Dict[str, WireRowSet] = {}
    for index, ownership in enumerate(ownerships, start=1):
        shard_name = f"{survey.archive}-shard{index}"
        shard = _make_shard_node(
            config,
            network,
            survey,
            info,
            db_name=f"{survey.archive.lower()}_s{index}",
            hostname=f"{survey.archive.lower()}-shard{index}.skyquery.net",
            pos_column=SHARD_POS_COLUMN,
        )
        transaction_urls[shard_name] = shard.enable_transactions()
        slice_rows = WireRowSet(
            list(rowset.columns), list(partitions[index - 1])
        )
        assignments[shard_name] = slice_rows
        mirrors: List[SkyNode] = []
        for rep in range(1, config.replicas + 1):
            mirror = _make_shard_node(
                config,
                network,
                survey,
                info,
                db_name=f"{survey.archive.lower()}_s{index}_r{rep}",
                hostname=(
                    f"{survey.archive.lower()}-shard{index}-r{rep}"
                    ".skyquery.net"
                ),
                pos_column=SHARD_POS_COLUMN,
            )
            mirror_key = f"{shard_name}-r{rep}"
            transaction_urls[mirror_key] = mirror.enable_transactions()
            assignments[mirror_key] = slice_rows
            mirrors.append(mirror)
        shard_primaries.append(shard)
        shard_mirrors[shard_name] = mirrors
        members.append(
            ShardMember(
                name=shard_name,
                ownership=ownership,
                endpoints=tuple(
                    node.service_urls() for node in [shard] + mirrors
                ),
            )
        )

    exchange = DataExchange(portal, transaction_urls)
    result = exchange.stage_partitioned(
        assignments,
        target_table=survey.primary_table,
        txn_label=f"shard-{survey.archive.lower()}",
    )
    if not result.committed:
        raise RegistrationError(
            f"shard provisioning for {survey.archive!r} aborted: "
            f"{result.abort_reason}"
        )

    shard_set = ShardSet(members=tuple(members))
    primary.shard_set = shard_set
    for replica in archive_replicas:
        # Archive replicas hold the full table too; if the chain fails
        # over to one, it coordinates the identical fan-out.
        replica.shard_set = shard_set
    primary.register_with_portal(
        portal.service_url("registration"),
        replicas=[replica.service_urls() for replica in archive_replicas],
        shards=shard_set,
    )
    return shard_primaries, shard_mirrors
