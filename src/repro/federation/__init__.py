"""Federation assembly: canned surveys + a one-call builder.

:func:`build_federation` wires a whole SkyQuery deployment — Portal,
SkyNodes loaded with synthetic survey data, simulated network links, the
registration handshake — and returns a handle exposing every component,
the ground truth, and a ready client.
"""

from repro.federation.surveys import FIRST, SDSS, TWOMASS, default_surveys
from repro.federation.builder import Federation, FederationConfig, build_federation

__all__ = [
    "FIRST",
    "SDSS",
    "TWOMASS",
    "default_surveys",
    "Federation",
    "FederationConfig",
    "build_federation",
]
