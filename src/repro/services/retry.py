"""Retry policies and circuit breakers for service calls.

The seed made every RPC a single-shot call: one transient fault anywhere
in the daisy chain aborted the whole cross-match. This module gives
:class:`~repro.services.client.ServiceProxy` the standard resilience
toolkit — bounded retries with exponential backoff and (seeded,
deterministic) jitter, per-attempt timeouts, an overall deadline, and a
per-endpoint circuit breaker that fails fast once an endpoint looks dead
and half-opens after a cooldown.

Everything runs against the *simulated* clock: backoff waits advance
``network.clock``, breaker cooldowns compare sim timestamps, and jitter
comes from a seeded RNG, so resilience tests replay identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import CircuitOpenError
from repro.transport.metrics import NetworkMetrics

MetricsFn = Callable[[], Optional[NetworkMetrics]]


@dataclass(frozen=True)
class RetryPolicy:
    """How a proxy retries transient transport failures.

    ``max_attempts`` counts the first try: ``max_attempts=4`` is one call
    plus up to three retries. ``timeout_s`` bounds each attempt's transfer
    directions; ``deadline_s`` bounds the whole call (attempts + backoff)
    in simulated seconds.
    """

    max_attempts: int = 4
    timeout_s: Optional[float] = 30.0
    base_backoff_s: float = 0.5
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 15.0
    jitter: float = 0.5  # fraction of the backoff randomized on top
    deadline_s: Optional[float] = None
    seed: int = 0

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based), with jitter."""
        base = min(
            self.base_backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return base * (1.0 + self.jitter * rng.random())

    def rng_for(self, src_host: str, url: str) -> random.Random:
        """A deterministic jitter RNG for one caller/endpoint pair."""
        return random.Random(f"{self.seed}:{src_host}:{url}")


class CircuitBreaker:
    """Per-endpoint breaker: closed -> open -> half-open -> closed.

    ``failure_threshold`` consecutive transport failures trip the breaker;
    while open, calls fail fast with :class:`~repro.errors.CircuitOpenError`
    (no wire traffic). After ``cooldown_s`` simulated seconds the breaker
    half-opens: the next call goes through as a probe, and its outcome
    either closes the breaker or re-opens it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        endpoint: str,
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 60.0,
        metrics: Optional[MetricsFn] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.endpoint = endpoint
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at_s = 0.0
        self._metrics = metrics

    def check(self, now: float) -> None:
        """Gate one call: raises when open, admits a probe when cooled down."""
        if self.state != self.OPEN:
            return
        if now - self.opened_at_s >= self.cooldown_s:
            self._transition(self.HALF_OPEN, now)
            return
        retry_at = self.opened_at_s + self.cooldown_s
        raise CircuitOpenError(
            f"circuit for {self.endpoint} is open until t={retry_at:g}s",
            endpoint=self.endpoint,
            retry_at_s=retry_at,
        )

    def record_success(self, now: float) -> None:
        """The endpoint answered: reset failures, close if probing."""
        self.consecutive_failures = 0
        if self.state != self.CLOSED:
            self._transition(self.CLOSED, now)

    def record_failure(self, now: float) -> None:
        """A transport-level failure: maybe trip (or re-trip) the breaker."""
        self.consecutive_failures += 1
        should_open = (
            self.state == self.HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if should_open and self.state != self.OPEN:
            self._transition(self.OPEN, now)
        if self.state == self.OPEN:
            self.opened_at_s = now

    def _transition(self, new_state: str, now: float) -> None:
        old_state, self.state = self.state, new_state
        if new_state == self.OPEN:
            self.opened_at_s = now
        metrics = self._metrics() if self._metrics is not None else None
        if metrics is not None:
            metrics.record_breaker(self.endpoint, old_state, new_state, now)


class BreakerRegistry:
    """Shared per-endpoint breakers for all proxies of one caller."""

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown_s: float = 60.0,
        metrics: Optional[MetricsFn] = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._metrics = metrics
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, endpoint: str) -> CircuitBreaker:
        """The breaker guarding an endpoint URL (created on first use)."""
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = CircuitBreaker(
                endpoint,
                failure_threshold=self.failure_threshold,
                cooldown_s=self.cooldown_s,
                metrics=self._metrics,
            )
            self._breakers[endpoint] = breaker
        return breaker

    def states(self) -> Dict[str, str]:
        """Current state of every known breaker (for tests/reports)."""
        return {url: b.state for url, b in self._breakers.items()}
