"""Chunked rowset transfer between services (sender and receiver halves).

The paper's workaround for its ~10 MB XML parser ceiling ("dividing large
data sets into smaller chunks") is a general transfer pattern, used by the
Cross match service between chain neighbours *and* by the Query service
when a caller pulls a large result. The sender returns either the rowset
inline or a ``{chunked, transfer_id, chunk_count}`` descriptor; the caller
then drains numbered ``FetchChunk`` calls and reassembles.

Sender-side state is bounded: a transfer a caller abandons mid-drain
(crash, circuit opened, chain retried from scratch) is reclaimed either by
an explicit ``AbortTransfer`` or by a TTL keyed off the simulated clock
(:meth:`ChunkedSender.bind_clock`), with every reclaim counted in
``NetworkMetrics.reclaimed_transfers``. A fully drained transfer parks its
final chunk in a small completed-cache so a retry of the *last* fetch
(response lost in flight) is served idempotently instead of failing with
"unknown transfer".
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError, SoapError
from repro.soap.encoding import WireRowSet
from repro.transport.chunking import envelope_bytes, split_for_budget

#: Phase label for the bulk chunk-drain traffic, so reports separate
#: payload bytes from chain-control bytes.
CHUNK_TRANSFER_PHASE = "chunk-transfer"

#: How long (simulated seconds) an unfetched transfer survives once the
#: sender is bound to a clock. Generous relative to any retry budget.
DEFAULT_TRANSFER_TTL_S = 600.0


class ChunkedSender:
    """Sender half: hold prepared chunks until the caller fetches them."""

    def __init__(
        self,
        owner_name: str,
        chunk_budget_bytes: Optional[int],
        *,
        ttl_s: float = DEFAULT_TRANSFER_TTL_S,
    ) -> None:
        self.owner_name = owner_name
        self.chunk_budget_bytes = chunk_budget_bytes
        self.ttl_s = ttl_s
        self._transfers: Dict[str, List[WireRowSet]] = {}
        self._deadlines: Dict[str, float] = {}
        #: transfer_id -> owning query id (only for tagged transfers);
        #: what :meth:`cancel_query` fans over.
        self._owners: Dict[str, str] = {}
        #: Fully drained transfers: transfer_id -> (final seq, final chunk,
        #: expiry). Lets a lost final-fetch response be retried.
        self._completed: Dict[str, Tuple[int, WireRowSet, float]] = {}
        self._transfer_ids = itertools.count(1)
        self._clock_fn: Optional[Callable[[], float]] = None
        self._on_reclaim: Optional[Callable[[int], None]] = None

    def bind_clock(
        self,
        clock_fn: Callable[[], float],
        on_reclaim: Optional[Callable[[int], None]] = None,
    ) -> None:
        """Arm TTL expiry against a clock; report reclaimed transfers.

        Without a clock the sender keeps the original behaviour: transfers
        live until their last chunk is fetched (or aborted explicitly).
        """
        self._clock_fn = clock_fn
        self._on_reclaim = on_reclaim

    def _now(self) -> Optional[float]:
        return self._clock_fn() if self._clock_fn is not None else None

    def _reclaimed(self, count: int) -> None:
        if count and self._on_reclaim is not None:
            self._on_reclaim(count)

    def reap(self) -> int:
        """Free transfers whose TTL passed; returns how many were pending.

        Completed-cache entries expire silently (their payload was fully
        delivered); abandoned *pending* transfers count as reclaimed.
        """
        now = self._now()
        if now is None:
            return 0
        expired = [
            tid for tid, deadline in self._deadlines.items() if deadline <= now
        ]
        for tid in expired:
            del self._transfers[tid]
            del self._deadlines[tid]
            self._owners.pop(tid, None)
        self._reclaimed(len(expired))
        for tid in [
            tid
            for tid, (_, _, deadline) in self._completed.items()
            if deadline <= now
        ]:
            del self._completed[tid]
        return len(expired)

    def respond(
        self,
        rowset: WireRowSet,
        extra: Optional[Dict[str, Any]] = None,
        *,
        query_id: str = "",
    ) -> Dict[str, Any]:
        """Wrap a rowset for the wire, chunking when over budget.

        ``query_id`` tags the transfer with the query it belongs to, so a
        later :meth:`cancel_query` can free it without knowing its id.
        """
        self.reap()
        response: Dict[str, Any] = dict(extra or {})
        budget = self.chunk_budget_bytes
        if budget is not None and envelope_bytes(rowset) > budget:
            chunks = split_for_budget(rowset, budget)
            transfer_id = f"{self.owner_name}-{next(self._transfer_ids)}"
            self._transfers[transfer_id] = chunks
            if query_id:
                self._owners[transfer_id] = query_id
            now = self._now()
            if now is not None:
                self._deadlines[transfer_id] = now + self.ttl_s
            response.update(
                chunked=True,
                transfer_id=transfer_id,
                chunk_count=len(chunks),
                row_count=len(rowset.rows),
            )
        else:
            response.update(chunked=False, rows=rowset)
        return response

    def fetch_chunk(self, transfer_id: str, seq: int) -> WireRowSet:
        """The ``FetchChunk`` operation body; frees the transfer at the end.

        A repeat of the *final* fetch re-serves the cached last chunk (the
        caller's retry after a lost response must not fault); any other
        touch of an unknown or expired transfer fails deterministically.
        """
        self.reap()
        seq = int(seq)
        completed = self._completed.get(transfer_id)
        if completed is not None:
            final_seq, final_chunk, _ = completed
            if seq != final_seq:
                raise ExecutionError(
                    f"chunk {seq} of completed transfer {transfer_id!r} is "
                    f"gone (only the final chunk {final_seq} is re-servable)"
                )
            now = self._now()
            if now is not None:
                self._completed[transfer_id] = (
                    final_seq, final_chunk, now + self.ttl_s,
                )
            return final_chunk
        chunks = self._transfers.get(transfer_id)
        if chunks is None:
            raise ExecutionError(f"unknown transfer {transfer_id!r}")
        if not 0 <= seq < len(chunks):
            raise ExecutionError(
                f"chunk {seq} out of range for transfer {transfer_id!r}"
            )
        chunk = chunks[seq]
        now = self._now()
        if seq == len(chunks) - 1:
            del self._transfers[transfer_id]
            self._deadlines.pop(transfer_id, None)
            self._owners.pop(transfer_id, None)
            if now is not None:
                self._completed[transfer_id] = (seq, chunk, now + self.ttl_s)
        elif now is not None:
            self._deadlines[transfer_id] = now + self.ttl_s
        return chunk

    def abort(self, transfer_id: str) -> bool:
        """Free a transfer early (the ``AbortTransfer`` operation body).

        Idempotent: returns False for ids already gone. Aborting a pending
        transfer counts as a reclaim; dropping a completed-cache entry does
        not (its payload was delivered).
        """
        self.reap()
        if transfer_id in self._transfers:
            del self._transfers[transfer_id]
            self._deadlines.pop(transfer_id, None)
            self._owners.pop(transfer_id, None)
            self._reclaimed(1)
            return True
        if transfer_id in self._completed:
            del self._completed[transfer_id]
            return True
        return False

    def cancel_query(self, query_id: str) -> int:
        """Free every pending transfer tagged with ``query_id``.

        Returns the number of *pending* transfers freed (what eager
        cancellation saved from the TTL reaper); completed-cache entries
        for the query are dropped silently — their payload was delivered.
        The caller, not this method, accounts the reclaims: cancellation
        is an ``eager_reclaims`` event, not a ``reclaimed_transfers`` one.
        Idempotent — a repeat (or a cancel racing the reaper) frees 0.
        """
        self.reap()
        if not query_id:
            return 0
        mine = [
            tid for tid, owner in self._owners.items() if owner == query_id
        ]
        for tid in mine:
            self._transfers.pop(tid, None)
            self._deadlines.pop(tid, None)
            del self._owners[tid]
        return len(mine)

    def crash(self) -> None:
        """Drop all transfer state silently, as a process crash would.

        Unlike :meth:`abort`, nothing is counted as reclaimed: the process
        died, it did not tidy up. Callers mid-drain will hit "unknown
        transfer" after the host recovers — exactly the failure a resumable
        protocol has to survive.
        """
        self._transfers.clear()
        self._deadlines.clear()
        self._owners.clear()
        self._completed.clear()

    @property
    def pending_transfers(self) -> int:
        """Number of transfers awaiting pickup (0 after clean runs)."""
        return len(self._transfers)


def receive_rowset(
    response: Dict[str, Any],
    proxy: Any,
    *,
    fetch_operation: str = "FetchChunk",
    abort_operation: Optional[str] = "AbortTransfer",
) -> WireRowSet:
    """Receiver half: unwrap an inline rowset or drain the chunks.

    Chunk fetches are tagged with the ``chunk-transfer`` phase so byte
    reports separate bulk payload from chain control. When a drain dies
    part-way the receiver best-effort aborts the transfer so the sender
    frees its chunks immediately instead of waiting out the TTL.
    """
    if not isinstance(response, dict):
        raise ExecutionError(f"malformed chunked response: {response!r}")
    if not response.get("chunked"):
        rowset = response.get("rows")
        if not isinstance(rowset, WireRowSet):
            raise SoapError("response carries no rowset")
        return rowset
    transfer_id = str(response["transfer_id"])
    chunk_count = int(response["chunk_count"])
    network = getattr(proxy, "network", None)
    parts: List[WireRowSet] = []
    try:
        for seq in range(chunk_count):
            if network is not None:
                with network.phase(CHUNK_TRANSFER_PHASE):
                    parts.append(
                        proxy.call(
                            fetch_operation, transfer_id=transfer_id, seq=seq
                        )
                    )
            else:
                parts.append(
                    proxy.call(
                        fetch_operation, transfer_id=transfer_id, seq=seq
                    )
                )
    except Exception:
        if abort_operation is not None:
            try:
                proxy.call(abort_operation, transfer_id=transfer_id)
            except Exception:
                pass
        raise
    return WireRowSet.concat(parts)
