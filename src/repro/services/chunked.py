"""Chunked rowset transfer between services (sender and receiver halves).

The paper's workaround for its ~10 MB XML parser ceiling ("dividing large
data sets into smaller chunks") is a general transfer pattern, used by the
Cross match service between chain neighbours *and* by the Query service
when a caller pulls a large result. The sender returns either the rowset
inline or a ``{chunked, transfer_id, chunk_count}`` descriptor; the caller
then drains numbered ``FetchChunk`` calls and reassembles.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from repro.errors import ExecutionError, SoapError
from repro.soap.encoding import WireRowSet
from repro.transport.chunking import envelope_bytes, split_for_budget


class ChunkedSender:
    """Sender half: hold prepared chunks until the caller fetches them."""

    def __init__(self, owner_name: str, chunk_budget_bytes: Optional[int]) -> None:
        self.owner_name = owner_name
        self.chunk_budget_bytes = chunk_budget_bytes
        self._transfers: Dict[str, List[WireRowSet]] = {}
        self._transfer_ids = itertools.count(1)

    def respond(
        self, rowset: WireRowSet, extra: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Wrap a rowset for the wire, chunking when over budget."""
        response: Dict[str, Any] = dict(extra or {})
        budget = self.chunk_budget_bytes
        if budget is not None and envelope_bytes(rowset) > budget:
            chunks = split_for_budget(rowset, budget)
            transfer_id = f"{self.owner_name}-{next(self._transfer_ids)}"
            self._transfers[transfer_id] = chunks
            response.update(
                chunked=True,
                transfer_id=transfer_id,
                chunk_count=len(chunks),
                row_count=len(rowset.rows),
            )
        else:
            response.update(chunked=False, rows=rowset)
        return response

    def fetch_chunk(self, transfer_id: str, seq: int) -> WireRowSet:
        """The ``FetchChunk`` operation body; frees the transfer at the end."""
        chunks = self._transfers.get(transfer_id)
        if chunks is None:
            raise ExecutionError(f"unknown transfer {transfer_id!r}")
        seq = int(seq)
        if not 0 <= seq < len(chunks):
            raise ExecutionError(
                f"chunk {seq} out of range for transfer {transfer_id!r}"
            )
        chunk = chunks[seq]
        if seq == len(chunks) - 1:
            del self._transfers[transfer_id]
        return chunk

    @property
    def pending_transfers(self) -> int:
        """Number of transfers awaiting pickup (0 after clean runs)."""
        return len(self._transfers)


def receive_rowset(
    response: Dict[str, Any], proxy: Any, *, fetch_operation: str = "FetchChunk"
) -> WireRowSet:
    """Receiver half: unwrap an inline rowset or drain the chunks."""
    if not isinstance(response, dict):
        raise ExecutionError(f"malformed chunked response: {response!r}")
    if not response.get("chunked"):
        rowset = response.get("rows")
        if not isinstance(rowset, WireRowSet):
            raise SoapError("response carries no rowset")
        return rowset
    transfer_id = str(response["transfer_id"])
    chunk_count = int(response["chunk_count"])
    parts = [
        proxy.call(fetch_operation, transfer_id=transfer_id, seq=seq)
        for seq in range(chunk_count)
    ]
    return WireRowSet.concat(parts)
