"""Caller-side proxies for SOAP services."""

from __future__ import annotations

from contextlib import nullcontext
from typing import Any, Callable, Optional

from repro.budget import CLEANUP_OPERATIONS, QueryBudget, active_budget
from repro.errors import (
    DeadlineExceededError,
    ShardUnavailableError,
    SoapFaultError,
    TransportError,
)
from repro.services.retry import CircuitBreaker, RetryPolicy
from repro.soap.envelope import build_rpc_request, parse_rpc_response
from repro.soap.wsdl import ServiceDescription, parse_wsdl
from repro.soap.xmlparser import XMLParser
from repro.tracing.tracer import TraceContext
from repro.transport.http import HttpRequest, HttpResponse, soap_request
from repro.transport.network import SimulatedNetwork


class ServiceProxy:
    """Invokes operations on a remote service endpoint.

    The proxy's ``parser`` deserializes responses; give it the *caller's*
    XML parser (with its memory budget) so that a SkyNode receiving a huge
    partial-result rowset from its neighbour hits the same out-of-memory
    wall the paper describes.

    With a :class:`~repro.services.retry.RetryPolicy`, transient transport
    failures (lost messages, timeouts, dead hosts) are retried with
    exponential backoff on the *simulated* clock; an optional
    :class:`~repro.services.retry.CircuitBreaker` fails fast once the
    endpoint has failed repeatedly. Without either, behaviour is the
    seed's single-shot call.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        src_host: str,
        url: str,
        *,
        parser: Optional[XMLParser] = None,
        description: Optional[ServiceDescription] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.network = network
        self.src_host = src_host
        self.url = url
        self.parser = parser or XMLParser()
        self.description = description
        self.retry_policy = retry_policy
        self.breaker = breaker
        self._rng = (
            retry_policy.rng_for(src_host, url)
            if retry_policy is not None
            else None
        )

    def call(self, operation: str, **params: Any) -> Any:
        """Invoke one operation; raises SoapFaultError on remote faults.

        With a tracer on the network, the call opens a *client* span and
        stamps its trace context into the envelope's SOAP Header, so the
        callee's server span threads under it; without a tracer the
        envelope is byte-identical to the untraced wire format. An
        active :class:`~repro.budget.QueryBudget` rides the same Header
        path and clamps the whole retry loop to the remaining budget —
        except for cleanup operations, which must outlive the deadline
        that killed their query.
        """
        if self.description is not None and self.description.operation(operation) is None:
            raise TransportError(
                f"service {self.description.name!r} does not describe "
                f"operation {operation!r}"
            )
        budget = (
            active_budget() if operation not in CLEANUP_OPERATIONS else None
        )

        def build(context: Optional[TraceContext]) -> HttpRequest:
            envelope = build_rpc_request(
                operation, params, trace_context=context, budget=budget
            )
            return soap_request(
                self.url, f"urn:skyquery#{operation}", envelope
            )

        return self._transact(
            build,
            operation,
            lambda resp: self._decode(operation, resp),
            budget=budget,
        )

    def _transact(
        self,
        build_request: Callable[[Optional[TraceContext]], HttpRequest],
        operation: str,
        decode: Any,
        budget: Optional[QueryBudget] = None,
    ) -> Any:
        """One request through the breaker + retry/backoff/deadline loop."""
        clock = self.network.clock
        if budget is not None and budget.expired(clock.now):
            # Spent before the request even left the host: fail without
            # touching the wire (or the breaker — the endpoint is fine).
            raise DeadlineExceededError(
                f"query budget exhausted at {self.src_host} "
                f"({clock.now - budget.deadline_s:.3f}s past the deadline) "
                f"before calling {operation!r} on {self.url}"
            )
        if self.breaker is not None:
            self.breaker.check(clock.now)
        policy = self.retry_policy
        deadline = (
            clock.now + policy.deadline_s
            if policy is not None and policy.deadline_s is not None
            else None
        )
        if budget is not None:
            deadline = (
                budget.deadline_s
                if deadline is None
                else min(deadline, budget.deadline_s)
            )
        tracer = self.network.tracer
        # The span opens INSIDE the branch block: a branch rewinds the
        # clock on exit (parallel siblings overlap), so the span must
        # close while the branch's own time is still on the clock.
        with self.network.branch():
            span_scope = (
                tracer.span(operation, host=self.src_host, kind="client")
                if tracer is not None
                else nullcontext(None)
            )
            with span_scope as span:
                request = build_request(
                    tracer.context() if tracer is not None else None
                )
                result = self._attempt_loop(
                    request, operation, decode, policy, deadline, span,
                    budget=budget,
                )
        return result

    def _attempt_loop(
        self,
        request: HttpRequest,
        operation: str,
        decode: Any,
        policy: Optional[RetryPolicy],
        deadline: Optional[float],
        span: Any,
        budget: Optional[QueryBudget] = None,
    ) -> Any:
        clock = self.network.clock
        attempt = 0
        while True:
            timeout_s = policy.timeout_s if policy is not None else None
            if deadline is not None:
                # Clamp the attempt's timeout to the remaining deadline
                # budget: the last attempt must not overrun the caller's
                # deadline by up to one whole per-attempt timeout.
                remaining = max(deadline - clock.now, 0.0)
                timeout_s = (
                    remaining
                    if timeout_s is None
                    else min(timeout_s, remaining)
                )
            try:
                response = self.network.request(
                    self.src_host,
                    request,
                    operation=operation,
                    timeout_s=timeout_s,
                )
                result = decode(response)
            except TransportError as exc:
                attempt += 1
                retryable = (
                    policy is not None and attempt < policy.max_attempts
                )
                if retryable:
                    backoff = policy.backoff_s(attempt, self._rng)
                    retryable = (
                        deadline is None
                        or clock.now + backoff <= deadline
                    )
                if not retryable:
                    if self.breaker is not None:
                        self.breaker.record_failure(clock.now)
                    if budget is not None and budget.expired(clock.now):
                        # The budget ran out while this attempt waited:
                        # retrying (or failing over) cannot help, so the
                        # typed deadline error supersedes the transport
                        # failure and propagates to cancellation instead
                        # of the chain executor's recovery loop.
                        raise DeadlineExceededError(
                            f"query budget exhausted during {operation!r} "
                            f"from {self.src_host} to {self.url} "
                            f"(attempt {attempt}: {exc})"
                        ) from exc
                    raise
                if span is not None:
                    span.retries += 1
                    span.annotate("retry", t=clock.now, attempt=attempt)
                self.network.sleep(backoff)
                self.network.metrics.retries += 1
                continue
            except SoapFaultError as exc:
                # The endpoint answered (with an application fault):
                # it is alive as far as the breaker is concerned.
                if self.breaker is not None:
                    self.breaker.record_success(clock.now)
                if exc.detail == "DeadlineExceededError":
                    # A downstream hop refused budget-expired work; the
                    # faultstring already names that hop.
                    raise DeadlineExceededError(exc.faultstring) from exc
                if exc.detail == "ShardUnavailableError":
                    # A downstream coordinator exhausted one shard's whole
                    # candidate list; archive-level failover cannot help,
                    # so the typed error must reach the executor intact.
                    raise ShardUnavailableError(exc.faultstring) from exc
                raise
            if self.breaker is not None:
                self.breaker.record_success(clock.now)
            return result

    def _decode(self, operation: str, response: HttpResponse) -> Any:
        """Deserialize one response, surfacing non-SOAP HTTP errors clearly."""
        if not response.ok and b"Envelope" not in response.body:
            snippet = response.body[:120].decode("utf-8", "replace")
            raise TransportError(
                f"HTTP {response.status} from {self.url} for "
                f"{operation!r}: {snippet}"
            )
        return parse_rpc_response(response.body, self.parser)

    def fetch_wsdl(self) -> ServiceDescription:
        """GET the endpoint's WSDL and remember the parsed description.

        Goes through the same retry/breaker path as :meth:`call`: with a
        :class:`~repro.services.retry.RetryPolicy` configured, a single
        dropped WSDL GET no longer fails the whole federation build.
        """
        def build(context: Optional[TraceContext]) -> HttpRequest:
            # Plain GET: no envelope, so the trace context (if any) rides
            # only on the recording side as the client span.
            del context
            return HttpRequest("GET", f"{self.url}?wsdl")

        def decode(response: HttpResponse) -> ServiceDescription:
            if not response.ok:
                raise TransportError(
                    f"WSDL fetch from {self.url} failed with "
                    f"{response.status}"
                )
            return parse_wsdl(response.body.decode("utf-8"))

        self.description = self._transact(build, "wsdl", decode)
        return self.description
