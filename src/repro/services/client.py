"""Caller-side proxies for SOAP services."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import TransportError
from repro.soap.envelope import build_rpc_request, parse_rpc_response
from repro.soap.wsdl import ServiceDescription, parse_wsdl
from repro.soap.xmlparser import XMLParser
from repro.transport.http import HttpRequest, soap_request
from repro.transport.network import SimulatedNetwork


class ServiceProxy:
    """Invokes operations on a remote service endpoint.

    The proxy's ``parser`` deserializes responses; give it the *caller's*
    XML parser (with its memory budget) so that a SkyNode receiving a huge
    partial-result rowset from its neighbour hits the same out-of-memory
    wall the paper describes.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        src_host: str,
        url: str,
        *,
        parser: Optional[XMLParser] = None,
        description: Optional[ServiceDescription] = None,
    ) -> None:
        self.network = network
        self.src_host = src_host
        self.url = url
        self.parser = parser or XMLParser()
        self.description = description

    def call(self, operation: str, **params: Any) -> Any:
        """Invoke one operation; raises SoapFaultError on remote faults."""
        if self.description is not None and self.description.operation(operation) is None:
            raise TransportError(
                f"service {self.description.name!r} does not describe "
                f"operation {operation!r}"
            )
        envelope = build_rpc_request(operation, params)
        request = soap_request(self.url, f"urn:skyquery#{operation}", envelope)
        response = self.network.request(self.src_host, request, operation=operation)
        return parse_rpc_response(response.body, self.parser)

    def fetch_wsdl(self) -> ServiceDescription:
        """GET the endpoint's WSDL and remember the parsed description."""
        request = HttpRequest("GET", f"{self.url}?wsdl")
        response = self.network.request(self.src_host, request, operation="wsdl")
        if not response.ok:
            raise TransportError(
                f"WSDL fetch from {self.url} failed with {response.status}"
            )
        self.description = parse_wsdl(response.body.decode("utf-8"))
        return self.description
