"""Caller-side proxies for SOAP services."""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SoapFaultError, TransportError
from repro.services.retry import CircuitBreaker, RetryPolicy
from repro.soap.envelope import build_rpc_request, parse_rpc_response
from repro.soap.wsdl import ServiceDescription, parse_wsdl
from repro.soap.xmlparser import XMLParser
from repro.transport.http import HttpRequest, HttpResponse, soap_request
from repro.transport.network import SimulatedNetwork


class ServiceProxy:
    """Invokes operations on a remote service endpoint.

    The proxy's ``parser`` deserializes responses; give it the *caller's*
    XML parser (with its memory budget) so that a SkyNode receiving a huge
    partial-result rowset from its neighbour hits the same out-of-memory
    wall the paper describes.

    With a :class:`~repro.services.retry.RetryPolicy`, transient transport
    failures (lost messages, timeouts, dead hosts) are retried with
    exponential backoff on the *simulated* clock; an optional
    :class:`~repro.services.retry.CircuitBreaker` fails fast once the
    endpoint has failed repeatedly. Without either, behaviour is the
    seed's single-shot call.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        src_host: str,
        url: str,
        *,
        parser: Optional[XMLParser] = None,
        description: Optional[ServiceDescription] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.network = network
        self.src_host = src_host
        self.url = url
        self.parser = parser or XMLParser()
        self.description = description
        self.retry_policy = retry_policy
        self.breaker = breaker
        self._rng = (
            retry_policy.rng_for(src_host, url)
            if retry_policy is not None
            else None
        )

    def call(self, operation: str, **params: Any) -> Any:
        """Invoke one operation; raises SoapFaultError on remote faults."""
        if self.description is not None and self.description.operation(operation) is None:
            raise TransportError(
                f"service {self.description.name!r} does not describe "
                f"operation {operation!r}"
            )
        envelope = build_rpc_request(operation, params)
        request = soap_request(self.url, f"urn:skyquery#{operation}", envelope)
        return self._transact(
            request, operation, lambda resp: self._decode(operation, resp)
        )

    def _transact(
        self,
        request: HttpRequest,
        operation: str,
        decode: Any,
    ) -> Any:
        """One request through the breaker + retry/backoff/deadline loop."""
        clock = self.network.clock
        if self.breaker is not None:
            self.breaker.check(clock.now)
        policy = self.retry_policy
        deadline = (
            clock.now + policy.deadline_s
            if policy is not None and policy.deadline_s is not None
            else None
        )
        attempt = 0
        with self.network.branch():
            while True:
                timeout_s = policy.timeout_s if policy is not None else None
                if deadline is not None:
                    # Clamp the attempt's timeout to the remaining deadline
                    # budget: the last attempt must not overrun the caller's
                    # deadline by up to one whole per-attempt timeout.
                    remaining = max(deadline - clock.now, 0.0)
                    timeout_s = (
                        remaining
                        if timeout_s is None
                        else min(timeout_s, remaining)
                    )
                try:
                    response = self.network.request(
                        self.src_host,
                        request,
                        operation=operation,
                        timeout_s=timeout_s,
                    )
                    result = decode(response)
                except TransportError:
                    attempt += 1
                    retryable = (
                        policy is not None and attempt < policy.max_attempts
                    )
                    if retryable:
                        backoff = policy.backoff_s(attempt, self._rng)
                        retryable = (
                            deadline is None
                            or clock.now + backoff <= deadline
                        )
                    if not retryable:
                        if self.breaker is not None:
                            self.breaker.record_failure(clock.now)
                        raise
                    self.network.sleep(backoff)
                    self.network.metrics.retries += 1
                    continue
                except SoapFaultError:
                    # The endpoint answered (with an application fault):
                    # it is alive as far as the breaker is concerned.
                    if self.breaker is not None:
                        self.breaker.record_success(clock.now)
                    raise
                if self.breaker is not None:
                    self.breaker.record_success(clock.now)
                return result

    def _decode(self, operation: str, response: HttpResponse) -> Any:
        """Deserialize one response, surfacing non-SOAP HTTP errors clearly."""
        if not response.ok and b"Envelope" not in response.body:
            snippet = response.body[:120].decode("utf-8", "replace")
            raise TransportError(
                f"HTTP {response.status} from {self.url} for "
                f"{operation!r}: {snippet}"
            )
        return parse_rpc_response(response.body, self.parser)

    def fetch_wsdl(self) -> ServiceDescription:
        """GET the endpoint's WSDL and remember the parsed description.

        Goes through the same retry/breaker path as :meth:`call`: with a
        :class:`~repro.services.retry.RetryPolicy` configured, a single
        dropped WSDL GET no longer fails the whole federation build.
        """
        request = HttpRequest("GET", f"{self.url}?wsdl")

        def decode(response: HttpResponse) -> ServiceDescription:
            if not response.ok:
                raise TransportError(
                    f"WSDL fetch from {self.url} failed with "
                    f"{response.status}"
                )
            return parse_wsdl(response.body.decode("utf-8"))

        self.description = self._transact(request, "wsdl", decode)
        return self.description
