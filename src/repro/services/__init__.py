"""The Web-services framework: services, hosts, proxies, and discovery.

Everything the federation components say to each other goes through this
layer as real SOAP-over-HTTP text: a :class:`WebService` dispatches parsed
RPC requests to registered operations, a :class:`ServiceHost` routes HTTP
paths to services on one hostname, a :class:`ServiceProxy` is the caller
side, and :class:`~repro.services.registry.UDDIRegistry` plays UDDI.
"""

from repro.services.framework import ServiceHost, WebService
from repro.services.client import ServiceProxy
from repro.services.registry import RegistryEntry, UDDIRegistry

__all__ = [
    "ServiceHost",
    "WebService",
    "ServiceProxy",
    "RegistryEntry",
    "UDDIRegistry",
]
