"""A UDDI-style service registry.

The paper (Section 3.1): services "need a unique service for discovering
other services... UDDI is the standard architecture for building such
repositories." This registry is itself a Web service: publishers register
(name, category, endpoint URL, WSDL), and clients find entries by category
or name — which is how a new SkyNode can locate the Portal's Registration
service in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.services.framework import WebService


@dataclass(frozen=True)
class RegistryEntry:
    """One published service: a primary endpoint plus optional replicas.

    ``replica_urls`` lists mirror endpoints serving identical content —
    a client that finds the primary dead may try them in order (GAVO-style
    multi-endpoint mirror records).
    """

    name: str
    category: str
    url: str
    description: str = ""
    replica_urls: Tuple[str, ...] = ()

    def endpoints(self) -> List[str]:
        """Every endpoint for this service, primary first."""
        return [self.url, *self.replica_urls]

    def to_wire(self) -> Dict[str, Any]:
        """Encode as a SOAP struct."""
        return {
            "name": self.name,
            "category": self.category,
            "url": self.url,
            "description": self.description,
            "replica_urls": list(self.replica_urls),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "RegistryEntry":
        """Decode from a SOAP struct."""
        return cls(
            name=str(data["name"]),
            category=str(data["category"]),
            url=str(data["url"]),
            description=str(data.get("description") or ""),
            replica_urls=tuple(
                str(u) for u in data.get("replica_urls") or []
            ),
        )


class UDDIRegistry(WebService):
    """The discovery service: publish / find / unpublish."""

    def __init__(self) -> None:
        super().__init__("UDDIRegistry")
        self._entries: Dict[str, RegistryEntry] = {}
        self.register(
            "Publish",
            self._publish,
            params=(
                ("name", "string"),
                ("category", "string"),
                ("url", "string"),
                ("description", "string"),
                ("replica_urls", "array"),
            ),
            returns="boolean",
            doc="Register a service endpoint (plus any replica mirrors) "
                "under a category.",
        )
        self.register(
            "Find",
            self._find,
            params=(("category", "string"), ("name", "string")),
            returns="array",
            doc="Find services by category and/or name ('' matches all).",
        )
        self.register(
            "Unpublish",
            self._unpublish,
            params=(("name", "string"),),
            returns="boolean",
            doc="Remove a published service by name.",
        )

    def _publish(
        self,
        name: str,
        category: str,
        url: str,
        description: str = "",
        replica_urls: Optional[List[str]] = None,
    ) -> bool:
        if not name or not url:
            raise ServiceError("Publish requires a name and a url")
        replicas = tuple(str(u) for u in replica_urls or [] if u)
        if url in replicas:
            raise ServiceError(
                "a replica endpoint must differ from the primary url"
            )
        self._entries[name] = RegistryEntry(
            name, category, url, description, replicas
        )
        return True

    def _find(self, category: str = "", name: str = "") -> List[Dict[str, Any]]:
        matches = [
            entry.to_wire()
            for entry in self._entries.values()
            if (not category or entry.category == category)
            and (not name or entry.name == name)
        ]
        return sorted(matches, key=lambda e: e["name"])

    def _unpublish(self, name: str) -> bool:
        return self._entries.pop(name, None) is not None

    def entry_count(self) -> int:
        """Number of published entries (direct, for tests)."""
        return len(self._entries)
