"""Service-side plumbing: operation dispatch and HTTP hosting."""

from __future__ import annotations

import traceback
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.budget import (
    CLEANUP_OPERATIONS,
    active_budget,
    request_now,
    use_budget,
)
from repro.errors import (
    DeadlineExceededError,
    ServiceError,
    SkyQueryError,
    SoapError,
    XMLMemoryError,
)
from repro.soap.envelope import build_fault, build_rpc_response, parse_rpc_call
from repro.soap.wsdl import OperationSpec, ServiceDescription, generate_wsdl
from repro.soap.xmlparser import XMLParser
from repro.tracing.tracer import active_tracer
from repro.transport.http import HttpRequest, HttpResponse

OperationFn = Callable[..., Any]

#: Small scalar request parameters worth stamping onto server spans:
#: enough to tell batches, streams, and transactions apart in a trace
#: without copying query text or row payloads into annotations.
_TRACED_PARAMS = (
    "seq",
    "position",
    "xid",
    "stream_id",
    "transfer_id",
    "txn_id",
    "start_seq",
    "batch_size",
)


@dataclass
class _Operation:
    spec: OperationSpec
    fn: OperationFn


class WebService:
    """A SOAP RPC service: named operations with typed parameter specs.

    Subclasses register operations in ``__init__`` via :meth:`register`.
    Incoming requests are parsed with the service's own :class:`XMLParser`,
    whose memory limit models the per-node parser budget — oversized
    messages fault exactly like the paper's prototype did.
    """

    def __init__(
        self,
        name: str,
        *,
        parser_memory_limit: Optional[int] = None,
        parser_overhead_factor: float = 4.0,
    ) -> None:
        self.name = name
        self.parser = XMLParser(
            memory_limit_bytes=parser_memory_limit,
            overhead_factor=parser_overhead_factor,
        )
        self._operations: Dict[str, _Operation] = {}
        self.calls_handled = 0
        self.faults_returned = 0
        self._last_fault = ""

    def register(
        self,
        op_name: str,
        fn: OperationFn,
        *,
        params: Sequence[Tuple[str, str]] = (),
        returns: str = "string",
        doc: str = "",
    ) -> None:
        """Expose a callable as a SOAP operation."""
        if op_name in self._operations:
            raise ServiceError(f"operation {op_name!r} already registered")
        self._operations[op_name] = _Operation(
            OperationSpec(op_name, tuple(params), returns, doc), fn
        )

    def operation_names(self) -> list[str]:
        """Names of all exposed operations."""
        return sorted(self._operations)

    def describe(self, url: str) -> ServiceDescription:
        """The service's WSDL-level description bound to an endpoint URL."""
        return ServiceDescription(
            name=self.name,
            url=url,
            operations=[op.spec for op in self._operations.values()],
        )

    def wsdl(self, url: str) -> str:
        """The service's WSDL document."""
        return generate_wsdl(self.describe(url))

    def handle_soap(
        self, body: bytes, *, hostname: Optional[str] = None
    ) -> Tuple[int, str]:
        """Dispatch one SOAP request; returns (http status, response xml).

        When the network delivering the request has a tracer installed, a
        *server* span wraps the dispatch, parented under the caller's span
        via the envelope's ``<sq:TraceContext>`` header; SOAP faults mark
        the span as errored. The ``<sq:QueryBudget>`` header (or None —
        a request without one models a caller that never saw a budget)
        is scoped around the dispatch, so nested RPCs this handler makes
        inherit the query's remaining budget.
        """
        self.calls_handled += 1
        try:
            operation, params, context, budget = parse_rpc_call(
                body, self.parser
            )
        except XMLMemoryError as exc:
            return self._fault("soap:Server.OutOfMemory", str(exc))
        except (SoapError, SkyQueryError) as exc:
            return self._fault("soap:Client", f"malformed request: {exc}")
        tracer = active_tracer()
        scope = (
            tracer.span(
                operation,
                host=hostname or self.name,
                kind="server",
                context=context,
            )
            if tracer is not None
            else nullcontext(None)
        )
        with scope as span:
            if span is not None:
                marks = {k: params[k] for k in _TRACED_PARAMS if k in params}
                if marks:
                    span.annotate("request", t=span.start_s, **marks)
            with use_budget(budget):
                status, xml = self._dispatch(
                    operation, params, hostname=hostname
                )
            if span is not None and status != 200:
                span.status = "error"
                span.error = self._last_fault
        return status, xml

    def _dispatch(
        self,
        operation: str,
        params: Dict[str, Any],
        *,
        hostname: Optional[str] = None,
    ) -> Tuple[int, str]:
        entry = self._operations.get(operation)
        if entry is None:
            return self._fault(
                "soap:Client.UnknownOperation",
                f"service {self.name!r} has no operation {operation!r}",
            )
        try:
            self._check_budget(operation, hostname)
            result = entry.fn(**params)
        except SkyQueryError as exc:
            # The fault detail names the error class so callers can tell a
            # caller mistake (e.g. pinning a garbage-collected epoch) from
            # a genuine server failure without parsing the message text.
            return self._fault("soap:Server", str(exc), type(exc).__name__)
        except TypeError as exc:
            return self._fault(
                "soap:Client.BadArguments",
                f"bad arguments for {operation!r}: {exc}",
            )
        except Exception as exc:  # noqa: BLE001 - faults must not kill the host
            detail = traceback.format_exc(limit=3)
            return self._fault(
                "soap:Server.Internal", f"{type(exc).__name__}: {exc}", detail
            )
        try:
            return 200, build_rpc_response(operation, result)
        except SoapError as exc:
            return self._fault(
                "soap:Server.Serialization",
                f"could not serialize result of {operation!r}: {exc}",
            )

    def _check_budget(self, operation: str, hostname: Optional[str]) -> None:
        """Refuse work whose query budget is already spent.

        A hop that receives a request after the deadline faults instead
        of computing a doomed result — that fault propagates upstream as
        a typed ``DeadlineExceededError`` naming this hop. Cleanup
        operations are exempt: they free the dead query's state.
        """
        if operation in CLEANUP_OPERATIONS:
            return
        budget = active_budget()
        if budget is None:
            return
        now = request_now()
        if now is not None and budget.expired(now):
            raise DeadlineExceededError(
                f"query budget exhausted at {hostname or self.name} "
                f"({now - budget.deadline_s:.3f}s past the deadline) "
                f"before {operation!r} could run"
            )

    def _fault(self, code: str, message: str, detail: str = "") -> Tuple[int, str]:
        self.faults_returned += 1
        self._last_fault = f"{code}: {message}"
        return 500, build_fault(code, message, detail)


class ServiceHost:
    """Routes HTTP paths on one hostname to services.

    Also answers ``GET <path>?wsdl`` with the service's WSDL document,
    mirroring how real SOAP stacks publish their descriptions.
    """

    def __init__(self, hostname: str) -> None:
        self.hostname = hostname
        self._services: Dict[str, WebService] = {}

    def mount(self, path: str, service: WebService) -> str:
        """Mount a service at a path; returns its full endpoint URL."""
        if not path.startswith("/"):
            path = "/" + path
        if path in self._services:
            raise ServiceError(f"path {path!r} already mounted on {self.hostname}")
        self._services[path] = service
        return self.url_for(path)

    def url_for(self, path: str) -> str:
        """The endpoint URL for a mounted path."""
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{self.hostname}{path}"

    def service_at(self, path: str) -> Optional[WebService]:
        """The service mounted at a path, if any."""
        if not path.startswith("/"):
            path = "/" + path
        return self._services.get(path)

    def handle(self, request: HttpRequest) -> HttpResponse:
        """The host's HTTP handler (register with the network)."""
        from urllib.parse import urlparse

        path = request.path
        wants_wsdl = urlparse(request.url).query == "wsdl"
        service = self._services.get(path)
        if service is None:
            return HttpResponse(
                404, "Not Found", body=f"no service at {path}".encode()
            )
        if wants_wsdl or request.method == "GET":
            wsdl_text = service.wsdl(self.url_for(path))
            return HttpResponse(
                200,
                "OK",
                headers={"Content-Type": "text/xml; charset=utf-8"},
                body=wsdl_text.encode("utf-8"),
            )
        status, xml = service.handle_soap(
            request.body, hostname=self.hostname
        )
        return HttpResponse(
            status,
            "OK" if status == 200 else "Internal Server Error",
            headers={"Content-Type": "text/xml; charset=utf-8"},
            body=xml.encode("utf-8"),
        )
